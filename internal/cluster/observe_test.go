package cluster

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/stats"
	"transpimlib/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// skeleton renders a span tree's deterministic shape — names, process
// lanes, attributes, errors — without the wall-clock fields, so a
// golden file can pin the connected-trace structure.
func skeleton(s *telemetry.Span, indent string, sb *strings.Builder) {
	sb.WriteString(indent)
	sb.WriteString(s.Name)
	if s.Proc != "" {
		fmt.Fprintf(sb, " proc=%s", s.Proc)
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(sb, " %s=%s", a.Key, a.Value)
	}
	if s.Err != "" {
		fmt.Fprintf(sb, " err=%q", s.Err)
	}
	sb.WriteString("\n")
	for _, c := range s.Child {
		skeleton(c, indent+"  ", sb)
	}
}

// TestClusterConnectedTrace is the tentpole acceptance test: one
// traced cluster request yields a single connected trace — the router
// placement spans with the owning replica's engine pipeline spans
// grafted underneath — pinned by a golden skeleton. It doubles as the
// TraceID regression: the cluster-minted ID must reach the caller's
// RequestStats and both trace rings.
func TestClusterConnectedTrace(t *testing.T) {
	ecfg := engine.Config{DPUs: 2, Shards: 1, MaxBatch: 512}
	cl, err := New(Config{
		Engines:    []engine.Config{ecfg, ecfg},
		TraceDepth: 8,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	fn := core.Sigmoid
	p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
	xs := stats.RandomInputs(-6, 6, 64, 3)
	_, st, err := cl.EvaluateBatchTenant("acme", fn, p, xs)
	if err != nil {
		t.Fatal(err)
	}

	if st.TraceID == 0 {
		t.Fatal("cluster path left RequestStats.TraceID unset")
	}
	tr, ok := cl.TraceLast()
	if !ok {
		t.Fatal("no cluster trace retained")
	}
	if tr.ID != st.TraceID {
		t.Fatalf("cluster trace id %d != stats trace id %d", tr.ID, st.TraceID)
	}

	// The serving replica's own ring retained the same identity — the
	// propagated ID connects both views.
	served := -1
	for i, n := range cl.Stats().Routed {
		if n > 0 {
			served = i
		}
	}
	if served < 0 {
		t.Fatal("no replica served the request")
	}
	etr, ok := cl.Replica(served).TraceLast()
	if !ok || etr.ID != st.TraceID {
		t.Fatalf("replica %d trace = %v (ok=%v), want id %d", served, etr, ok, st.TraceID)
	}

	// Structure: cluster root → attempt → engine request subtree with
	// the full pipeline underneath, in the replica's process lane.
	var sb strings.Builder
	skeleton(tr.Root, "", &sb)
	out := sb.String()
	for _, want := range []string{
		"cluster_request proc=cluster",
		"attempt[0]",
		"request proc=replica/",
		"kernel",
		"transfer_in",
		"transfer_out",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("connected trace lacks %q:\n%s", want, out)
		}
	}

	// Pin the exact skeleton. The kernel cycle count is modeled (cost
	// table × workload), deterministic across runs and platforms.
	checkGolden(t, "trace.skeleton.golden", out)
}

// TestClusterTraceLadder drives the non-happy placement rungs — quota
// shed, queue shed, failover — and checks each leaves its span.
func TestClusterTraceLadder(t *testing.T) {
	fakes, execs := newFakes(2)
	rate := 100.0
	cl, err := NewWithExecutors(Config{
		TraceDepth:   8,
		Ledger:       true,
		MaxQueue:     4,
		Quotas:       map[string]Quota{"capped": {Rate: rate, Burst: 8}},
		Clock:        func() time.Time { return time.Unix(0, 0) },
		VirtualNodes: 16,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fn := core.Sigmoid
	p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
	xs := make([]float32, 16)

	// Quota shed: burst 8 < 16 elements.
	if _, _, err := cl.EvaluateBatchTenant("capped", fn, p, xs); err == nil {
		t.Fatal("quota shed did not error")
	}
	tr, _ := cl.TraceLast()
	var sb strings.Builder
	skeleton(tr.Root, "", &sb)
	if !strings.Contains(sb.String(), "shed reason=quota") {
		t.Fatalf("quota shed trace:\n%s", sb.String())
	}

	// Queue shed: both fakes over MaxQueue.
	fakes[0].depth.Store(10)
	fakes[1].depth.Store(10)
	if _, _, err := cl.EvaluateBatchTenant("t", fn, p, xs); err == nil {
		t.Fatal("queue shed did not error")
	}
	tr, _ = cl.TraceLast()
	sb.Reset()
	skeleton(tr.Root, "", &sb)
	if !strings.Contains(sb.String(), "shed reason=queue") {
		t.Fatalf("queue shed trace:\n%s", sb.String())
	}
	fakes[0].depth.Store(0)
	fakes[1].depth.Store(0)

	// Failover: first-choice replica fails, the other serves.
	fakes[0].failing.Store(true)
	fakes[1].failing.Store(false)
	if _, _, err := cl.EvaluateBatchTenant("t", fn, p, xs); err != nil {
		// Either replica may be primary for this key; flip and retry.
		fakes[0].failing.Store(false)
		fakes[1].failing.Store(true)
		if _, _, err := cl.EvaluateBatchTenant("t", fn, p, xs); err != nil {
			t.Fatal(err)
		}
	}
	tr, _ = cl.TraceLast()
	sb.Reset()
	skeleton(tr.Root, "", &sb)
	out := sb.String()
	if !strings.Contains(out, "failover=true") || !strings.Contains(out, "attempt[1]") {
		t.Fatalf("failover trace lacks the re-placement rung:\n%s", out)
	}

	// The router ledger recorded the sheds and the failover.
	snap := cl.Ledger()
	var shed, failovers uint64
	for _, r := range snap.Rows {
		shed += r.Shed
		failovers += r.Failovers
	}
	if shed != 2 || failovers != 1 {
		t.Fatalf("ledger shed=%d failovers=%d, want 2/1: %+v", shed, failovers, snap.Rows)
	}
}

// TestClusterLedgerReconciles is the ±0 acceptance gate: for a fully
// served (100%-traced, fault-free) workload, the merged cluster ledger's
// kernel-cycle total equals the sum of the replicas' simulator-attributed
// cycles exactly.
func TestClusterLedgerReconciles(t *testing.T) {
	ecfg := engine.Config{DPUs: 2, Shards: 1, MaxBatch: 256}
	cl, err := New(Config{
		Engines:    []engine.Config{ecfg, ecfg, ecfg},
		TraceDepth: 4,
		Ledger:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type spec struct {
		fn core.Function
		p  core.Params
	}
	specs := []spec{
		{core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}},
		{core.Exp, core.Params{Method: core.MLUT, SizeLog2: 12}},
		{core.Sin, core.Params{Method: core.CORDIC, Iterations: 16}},
	}
	tenants := []string{"acme", "globex", "initech"}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := specs[w%len(specs)]
			for i := 0; i < 5; i++ {
				xs := stats.RandomInputs(-3, 3, 50+w*17+i, uint64(w*100+i+1))
				if _, _, err := cl.EvaluateBatchTenant(tenants[w%3], sp.fn, sp.p, xs); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	snap := cl.Ledger()
	var ledCycles, ledElems, ledReqs uint64
	for _, r := range snap.Rows {
		ledCycles += r.KernelCycles
		ledElems += r.Elements
		ledReqs += r.Requests
	}
	var simCycles, engCycles, engElems, engReqs uint64
	for i := 0; i < cl.Replicas(); i++ {
		simCycles += cl.Replica(i).System().AttributedKernelCycles()
		st := cl.Replica(i).Stats()
		engCycles += st.KernelCycles
		engElems += st.Elements
		engReqs += st.Requests
	}
	if ledCycles != simCycles {
		t.Errorf("ledger cycles %d != simulator attributed cycles %d (Δ %d)",
			ledCycles, simCycles, int64(ledCycles)-int64(simCycles))
	}
	if ledCycles != engCycles {
		t.Errorf("ledger cycles %d != engine counter cycles %d", ledCycles, engCycles)
	}
	if ledElems != engElems {
		t.Errorf("ledger elements %d != engine elements %d", ledElems, engElems)
	}
	if ledReqs != engReqs {
		t.Errorf("ledger requests %d != engine requests %d", ledReqs, engReqs)
	}
	if snap.Overflowed != 0 {
		t.Errorf("ledger overflowed %d rows", snap.Overflowed)
	}
}

// TestClusterObservabilityDisabledIdentical: with tracing, ledger and
// timeline all off, the cluster serves bit-identical outputs and
// identical modeled accounting to a fully instrumented one.
func TestClusterObservabilityDisabledIdentical(t *testing.T) {
	run := func(instrumented bool) ([]float32, uint64) {
		ecfg := engine.Config{DPUs: 2, Shards: 1, MaxBatch: 256}
		cfg := Config{Engines: []engine.Config{ecfg, ecfg}}
		if instrumented {
			cfg.TraceDepth = 8
			cfg.Ledger = true
			cfg.Timeline = telemetry.TimelineConfig{Enabled: true, BucketWidth: 10 * time.Millisecond}
		}
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		fn := core.Sigmoid
		p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
		xs := stats.RandomInputs(-6, 6, 333, 9)
		out, st, err := cl.EvaluateBatchTenant("acme", fn, p, xs)
		if err != nil {
			t.Fatal(err)
		}
		return out, st.KernelCycles
	}
	outOn, cycOn := run(true)
	outOff, cycOff := run(false)
	if cycOn != cycOff {
		t.Fatalf("modeled cycles diverge: %d vs %d", cycOn, cycOff)
	}
	for i := range outOn {
		if outOn[i] != outOff[i] {
			t.Fatalf("output %d diverges", i)
		}
	}
}

// TestClusterTimelineServed: an enabled cluster timeline accumulates
// windows from the cluster registry.
func TestClusterTimelineServed(t *testing.T) {
	ecfg := engine.Config{DPUs: 2, Shards: 1}
	cl, err := New(Config{
		Engines:  []engine.Config{ecfg},
		Timeline: telemetry.TimelineConfig{Enabled: true, BucketWidth: time.Second, Buckets: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fn := core.Sigmoid
	p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
	if _, _, err := cl.EvaluateBatchTenant("t", fn, p, make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	cl.timeline.Tick(time.Now())
	snap := cl.Observe().Timeline.Snapshot()
	if len(snap.Windows) == 0 {
		t.Fatal("timeline has no windows after a tick")
	}
	if got := snap.Windows[len(snap.Windows)-1].Values["cluster_requests_total:rate"]; got <= 0 {
		t.Fatalf("request rate = %v, want > 0", got)
	}
}
