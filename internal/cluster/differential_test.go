package cluster

import (
	"math"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/faultsim"
	"transpimlib/internal/stats"
)

// TestSingleReplicaBitIdentical is the acceptance gate: with N=1, no
// quotas, and no faults, routing through the cluster produces outputs,
// modeled cycles, and engine-wide modeled stats bit-identical to
// calling the engine directly.
func TestSingleReplicaBitIdentical(t *testing.T) {
	// One shard: multi-shard engines race batches across shard
	// goroutines, so shard residency (CacheHit, SetupSeconds) is not
	// comparable across engines — the same constraint the engine's own
	// differential tests work under. Outputs and cycles are
	// shard-independent either way.
	ecfg := engine.Config{DPUs: 4, Shards: 1, MaxBatch: 512}
	bare, err := engine.New(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	cl, err := New(Config{Engines: []engine.Config{ecfg}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	specs := []struct {
		fn core.Function
		p  core.Params
	}{
		{core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}},
		{core.Exp, core.Params{Method: core.MLUT, SizeLog2: 12}},
		{core.Tanh, core.Params{Method: core.CORDIC, Iterations: 16}},
		{core.GELU, core.Params{Method: core.LLUT, SizeLog2: 8}},
	}
	for si, sp := range specs {
		for r := 0; r < 4; r++ {
			xs := stats.RandomInputs(-6, 6, 257, uint64(si*10+r+1))
			y1, st1, err1 := bare.EvaluateBatchTenant("tn", sp.fn, sp.p, xs)
			y2, st2, err2 := cl.EvaluateBatchTenant("tn", sp.fn, sp.p, xs)
			if err1 != nil || err2 != nil {
				t.Fatalf("spec %d req %d: bare=%v cluster=%v", si, r, err1, err2)
			}
			for i := range y1 {
				if math.Float32bits(y1[i]) != math.Float32bits(y2[i]) {
					t.Fatalf("spec %d req %d elem %d: bare %x cluster %x",
						si, r, i, math.Float32bits(y1[i]), math.Float32bits(y2[i]))
				}
			}
			if st1.KernelCycles != st2.KernelCycles {
				t.Fatalf("spec %d req %d: kernel cycles %d vs %d", si, r, st1.KernelCycles, st2.KernelCycles)
			}
			// SetupSeconds carries a wall-clock table-generation
			// component (same caveat as the engine's own differential
			// tests); the fully modeled stage costs must match exactly.
			if st1.TransferInSeconds != st2.TransferInSeconds ||
				st1.ComputeSeconds != st2.ComputeSeconds ||
				st1.TransferOutSeconds != st2.TransferOutSeconds {
				t.Fatalf("spec %d req %d modeled stage seconds diverge:\nbare    %+v\ncluster %+v", si, r, st1, st2)
			}
			if st1.CacheHit != st2.CacheHit || st1.Batches != st2.Batches || st1.BatchElements != st2.BatchElements {
				t.Fatalf("spec %d req %d batching diverges:\nbare    %+v\ncluster %+v", si, r, st1, st2)
			}
		}
	}

	// The engine-wide accumulated stats must agree field-for-field —
	// both engines saw the identical request sequence. SetupSeconds is
	// the one wall-clock-contaminated field; everything else is
	// modeled or counted.
	s1, s2 := bare.Stats(), cl.ReplicaStats()[0]
	s1.SetupSeconds, s2.SetupSeconds = 0, 0
	if s1 != s2 {
		t.Fatalf("engine stats diverge:\nbare:    %+v\ncluster: %+v", s1, s2)
	}

	// And the routing layer must have touched every request without
	// shedding or spilling any.
	cs := cl.Stats()
	if cs.Requests != 16 || cs.Routed[0] != 16 || cs.Shed != 0 || cs.Spills != 0 || cs.Failovers != 0 {
		t.Fatalf("cluster counters: %+v", cs)
	}
}

// TestClusterFaultedReplicaBitExact is the N=4 acceptance gate: with
// one replica under a total-DPU-failure fault plan, every request that
// the cluster serves — including those the faulted replica degrades to
// its host mirror and those re-routed after quarantine — returns
// outputs bit-identical to a clean reference engine.
func TestClusterFaultedReplicaBitExact(t *testing.T) {
	clean, err := engine.New(engine.Config{DPUs: 2, Shards: 1, MaxBatch: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	plan, err := faultsim.ParsePlan("seed=7,dpufail=1")
	if err != nil {
		t.Fatal(err)
	}
	ecfg := engine.Config{DPUs: 2, Shards: 1, MaxBatch: 512}
	fcfg := ecfg
	fcfg.Faults = &plan
	cl, err := New(Config{
		Engines:     []engine.Config{ecfg, fcfg, ecfg, ecfg},
		Replication: 2,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
	tenants := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	served := 0
	for round := 0; round < 6; round++ {
		for ti, tn := range tenants {
			xs := stats.RandomInputs(-7.5, 7.5, 200, uint64(round*100+ti+1))
			want, _, err := clean.EvaluateBatchTenant(tn, core.Sigmoid, p, xs)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := cl.EvaluateBatchTenant(tn, core.Sigmoid, p, xs)
			if err != nil {
				t.Fatalf("round %d tenant %s: %v", round, tn, err)
			}
			served++
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("round %d tenant %s elem %d: clean %x cluster %x",
						round, tn, i, math.Float32bits(want[i]), math.Float32bits(got[i]))
				}
			}
		}
	}
	if served != 48 {
		t.Fatalf("served %d, want 48", served)
	}

	// The faulted replica must have been exercised (its degrades are
	// the whole point of the scenario) and then quarantined.
	cs := cl.Stats()
	if cs.Degraded == 0 {
		t.Fatal("the faulted replica never served degraded traffic — routing missed it; adjust the seed")
	}
	h := cl.Health()[1]
	if h.Errors == 0 {
		t.Fatalf("faulted replica took no health penalty: %+v", h)
	}
	if cs.QuarantinedReplicas == 0 && !h.Quarantined && !h.Probation {
		t.Fatalf("sustained degradation never quarantined replica 1: stats=%+v health=%+v", cs, h)
	}
}
