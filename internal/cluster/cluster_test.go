package cluster

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
)

func testParams() core.Params {
	return core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
}

// TestQuotaShedTyped: a tenant over its token bucket is refused with
// ErrOverloaded, counted as a quota shed, and never reaches a replica.
func TestQuotaShedTyped(t *testing.T) {
	fakes, execs := newFakes(2)
	var now atomic.Int64
	c, err := NewWithExecutors(Config{
		Quotas: map[string]Quota{"metered": {Rate: 10, Burst: 100}},
		Clock:  func() time.Time { return time.Unix(0, now.Load()) },
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	xs := make([]float32, 60)
	// Burst 100 admits one 60-element request; the second (same
	// instant) finds 40 tokens and is shed.
	if _, _, err := c.EvaluateBatchTenant("metered", core.Exp, testParams(), xs); err != nil {
		t.Fatalf("first request: %v", err)
	}
	_, _, err = c.EvaluateBatchTenant("metered", core.Exp, testParams(), xs)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request: got %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "metered") {
		t.Fatalf("shed error does not name the tenant: %v", err)
	}
	// An unmetered tenant is unaffected.
	if _, _, err := c.EvaluateBatchTenant("free", core.Exp, testParams(), xs); err != nil {
		t.Fatalf("unmetered tenant: %v", err)
	}
	// Advancing the clock 6s refills 60 tokens: admitted again.
	now.Store(int64(6 * time.Second))
	if _, _, err := c.EvaluateBatchTenant("metered", core.Exp, testParams(), xs); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	st := c.Stats()
	if st.ShedQuota != 1 || st.ShedQueue != 0 || st.Shed != 1 {
		t.Fatalf("shed counters: %+v", st)
	}
	if got := fakes[0].calls.Load() + fakes[1].calls.Load(); got != 3 {
		t.Fatalf("replicas saw %d calls, want 3 (shed request must not execute)", got)
	}
}

// TestQueueShedTyped: when every candidate replica's backlog is at the
// bound, the request is shed with ErrOverloaded (queue reason).
func TestQueueShedTyped(t *testing.T) {
	fakes, execs := newFakes(3)
	c, err := NewWithExecutors(Config{Replication: 3, MaxQueue: 4}, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, f := range fakes {
		f.depth.Store(4)
	}
	xs := make([]float32, 8)
	_, _, err = c.EvaluateBatchTenant("t", core.Exp, testParams(), xs)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if st := c.Stats(); st.ShedQueue != 1 || st.ShedQuota != 0 {
		t.Fatalf("shed counters: %+v", st)
	}
	// One replica dropping under the bound is enough to serve again.
	fakes[2].depth.Store(0)
	if _, _, err := c.EvaluateBatchTenant("t", core.Exp, testParams(), xs); err != nil {
		t.Fatalf("after backlog drained: %v", err)
	}
}

// TestFailoverExhaustion: when every replica fails at the
// infrastructure level the caller gets a wrapped replica error, not
// ErrOverloaded, and every replica was tried exactly once.
func TestFailoverExhaustion(t *testing.T) {
	fakes, execs := newFakes(3)
	c, err := NewWithExecutors(Config{Replication: 2}, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, f := range fakes {
		f.failing.Store(true)
	}
	xs := make([]float32, 8)
	_, _, err = c.EvaluateBatchTenant("t", core.Exp, testParams(), xs)
	if err == nil || errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want replica failure", err)
	}
	if !errors.Is(err, engine.ErrEngineClosed) {
		t.Fatalf("exhaustion error should wrap the last replica error, got %v", err)
	}
	for i, f := range fakes {
		if f.calls.Load() != 1 {
			t.Fatalf("replica %d tried %d times, want exactly 1", i, f.calls.Load())
		}
	}
	if st := c.Stats(); st.Failovers != 3 {
		t.Fatalf("failovers = %d, want 3", st.Failovers)
	}
}

// TestDeterministicErrorNoFailover: a request error every replica
// would reproduce (unsupported method for the function) returns
// immediately — no retry on another replica, no health penalty.
func TestDeterministicErrorNoFailover(t *testing.T) {
	cfg := engine.Config{DPUs: 2, Shards: 1, MaxBatch: 256}
	c, err := New(Config{Engines: []engine.Config{cfg, cfg}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// CORDIC does not implement GELU.
	p := core.Params{Method: core.CORDIC, Iterations: 16}
	xs := make([]float32, 8)
	_, _, err = c.EvaluateBatchTenant("t", core.GELU, p, xs)
	if err == nil {
		t.Fatal("expected an unsupported-spec error")
	}
	if st := c.Stats(); st.Failovers != 0 {
		t.Fatalf("deterministic error caused %d failovers", st.Failovers)
	}
	for _, h := range c.Health() {
		if h.Errors != 0 {
			t.Fatalf("deterministic error penalized replica health: %+v", h)
		}
	}
}

// TestPrewarmReplicates: Prewarm builds a spec's tables on every
// replica in the key's candidate set, so the first real request hits a
// warm cache wherever the router places it.
func TestPrewarmReplicates(t *testing.T) {
	cfg := engine.Config{DPUs: 2, Shards: 1, MaxBatch: 256}
	c, err := New(Config{
		Engines:     []engine.Config{cfg, cfg, cfg, cfg},
		Replication: 2,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Prewarm(core.Sigmoid, testParams(), "warmed"); err != nil {
		t.Fatal(err)
	}
	warm := 0
	for i := 0; i < c.Replicas(); i++ {
		if c.Replica(i).CachedSpecs() > 0 {
			warm++
		}
	}
	if warm != 2 {
		t.Fatalf("tables resident on %d replicas, want exactly the K=2 candidate set", warm)
	}
	// The real request must be a cache hit.
	xs := make([]float32, 32)
	_, st, err := c.EvaluateBatchTenant("warmed", core.Sigmoid, testParams(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Fatal("request after Prewarm missed the setup cache")
	}
}

// TestClusterClosed: submits after Close fail with ErrClusterClosed.
func TestClusterClosed(t *testing.T) {
	_, execs := newFakes(2)
	c, err := NewWithExecutors(Config{}, execs)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if _, _, err := c.EvaluateBatchTenant("t", core.Exp, testParams(), make([]float32, 4)); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("got %v, want ErrClusterClosed", err)
	}
	if err := c.Prewarm(core.Exp, testParams(), "t"); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("prewarm after close: %v", err)
	}
}

// TestClusterMetricsExposition: the cluster telemetry registry carries
// the cluster_* series with per-replica labels.
func TestClusterMetricsExposition(t *testing.T) {
	fakes, execs := newFakes(2)
	c, err := NewWithExecutors(Config{MaxQueue: 1}, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.EvaluateBatchTenant("t", core.Exp, testParams(), make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	fakes[0].depth.Store(5)
	fakes[1].depth.Store(5)
	if _, _, err := c.EvaluateBatchTenant("t", core.Exp, testParams(), make([]float32, 4)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected queue shed, got %v", err)
	}
	var sb strings.Builder
	if err := c.Observe().Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"cluster_requests_total 2",
		`cluster_shed_total{reason="queue"} 1`,
		`cluster_routed_total{replica="0"}`,
		`cluster_routed_total{replica="1"}`,
		`cluster_replica_queue_depth{replica="0"}`,
		"cluster_quarantined_replicas 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
