package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded is the typed load-shedding error: the cluster refused
// the request to protect itself, either because the tenant's token
// bucket was empty (quota shed) or because every candidate replica's
// backlog exceeded MaxQueue (queue shed). Callers detect it with
// errors.Is and should back off before retrying; the request was never
// admitted, so no partial work exists.
var ErrOverloaded = errors.New("cluster: overloaded")

// Quota is one tenant's token bucket, denominated in elements: a
// request for n elements consumes n tokens. Rate refills the bucket
// per second of wall clock; Burst caps it (default: one second of
// Rate). The zero value means "no quota" for that tenant.
type Quota struct {
	Rate  float64 // tokens (elements) per second
	Burst float64 // bucket capacity; 0 = Rate
}

func (q Quota) withDefaults() Quota {
	if q.Burst <= 0 {
		q.Burst = q.Rate
	}
	return q
}

// bucket is one tenant's live token-bucket state. Buckets start full.
type bucket struct {
	q     Quota
	level float64
	last  time.Time
}

// admission is the per-tenant quota stage. One mutex guards the
// tenant map: admission runs once per request and the critical
// section is a map lookup plus a few float ops, so contention is not
// the bottleneck the engine pipeline is.
type admission struct {
	quotas map[string]Quota // configured per-tenant quotas
	def    *Quota           // quota for tenants not in the map; nil = unlimited

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newAdmission(quotas map[string]Quota, def *Quota) *admission {
	a := &admission{quotas: quotas, def: def, buckets: make(map[string]*bucket)}
	return a
}

// admit charges n tokens against tenant's bucket at time now. A
// tenant with no configured quota (and no default) is always
// admitted. Refill is computed from the elapsed wall clock, so with
// an injected test clock the shed set is a pure function of the
// request sequence.
func (a *admission) admit(tenant string, n int, now time.Time) bool {
	if a == nil {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		q, has := a.quotas[tenant]
		if !has {
			if a.def == nil {
				// Remember the exemption so repeat tenants skip the
				// config lookup.
				a.buckets[tenant] = &bucket{}
				return true
			}
			q = *a.def
		}
		q = q.withDefaults()
		b = &bucket{q: q, level: q.Burst, last: now}
		a.buckets[tenant] = b
	}
	if b.q == (Quota{}) {
		return true
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.level += b.q.Rate * dt
		if b.level > b.q.Burst {
			b.level = b.q.Burst
		}
	}
	b.last = now
	if b.level < float64(n) {
		return false
	}
	b.level -= float64(n)
	return true
}

// overloadQuota wraps ErrOverloaded for a quota shed.
func overloadQuota(tenant string) error {
	return fmt.Errorf("%w: tenant %q token bucket exhausted", ErrOverloaded, tenant)
}

// overloadQueue wraps ErrOverloaded for a backlog shed.
func overloadQueue() error {
	return fmt.Errorf("%w: every candidate replica over the backlog bound", ErrOverloaded)
}
