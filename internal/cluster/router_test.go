package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
)

// fakeExec is a scriptable execution stage: it echoes inputs, reports
// a settable queue depth, and can be flipped into a failing state that
// returns the engine's infrastructure error.
type fakeExec struct {
	id      int
	depth   atomic.Int64
	failing atomic.Bool
	degrade atomic.Bool
	calls   atomic.Uint64
}

func (f *fakeExec) EvaluateBatchTenant(tenant string, fn core.Function, p core.Params, xs []float32) ([]float32, engine.RequestStats, error) {
	f.calls.Add(1)
	if f.failing.Load() {
		return nil, engine.RequestStats{}, engine.ErrEngineClosed
	}
	out := make([]float32, len(xs))
	copy(out, xs)
	st := engine.RequestStats{Degraded: f.degrade.Load()}
	return out, st, nil
}

func (f *fakeExec) QueueDepth() int     { return int(f.depth.Load()) }
func (f *fakeExec) Stats() engine.Stats { return engine.Stats{} }
func (f *fakeExec) Close()              {}

func newFakes(n int) ([]*fakeExec, []engine.Executor) {
	fakes := make([]*fakeExec, n)
	execs := make([]engine.Executor, n)
	for i := range fakes {
		fakes[i] = &fakeExec{id: i}
		execs[i] = fakes[i]
	}
	return fakes, execs
}

func TestRingCandidatesDistinct(t *testing.T) {
	r := newRing(8, 64, 7)
	var scratch [maxReplication]int
	for h := uint64(0); h < 1000; h++ {
		cands := r.candidates(splitmix64(h), 4, scratch[:0])
		if len(cands) != 4 {
			t.Fatalf("h=%d: %d candidates, want 4", h, len(cands))
		}
		seen := map[int]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("h=%d: duplicate replica %d in %v", h, c, cands)
			}
			seen[c] = true
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := newRing(4, 64, 1)
	var scratch [maxReplication]int
	counts := make([]int, 4)
	for h := uint64(0); h < 4000; h++ {
		counts[r.candidates(splitmix64(h), 1, scratch[:0])[0]]++
	}
	for rep, n := range counts {
		if n < 400 {
			t.Fatalf("replica %d owns only %d/4000 keys — ring badly skewed: %v", rep, n, counts)
		}
	}
}

// scriptedRun drives one deterministic request sequence through a
// fresh 4-replica cluster (fakes), with per-tenant quotas on a fake
// clock and replica 1 failing for a mid-sequence window, and returns
// the placement log and the shed set.
func scriptedRun(t *testing.T) ([]placement, []int) {
	t.Helper()
	fakes, execs := newFakes(4)
	// Fixed, asymmetric queue depths so least-loaded fallback has a
	// deterministic order to prefer.
	for i, f := range fakes {
		f.depth.Store(int64(i))
	}
	var tick atomic.Int64
	clock := func() time.Time {
		// 10ms per admission decision: refills are a pure function of
		// the request index.
		return time.Unix(0, tick.Add(1)*int64(10*time.Millisecond))
	}
	var mu sync.Mutex
	var log []placement
	cfg := Config{
		Replication: 2,
		Seed:        42,
		Quotas: map[string]Quota{
			// "hot" consumes 64 elements per 40ms of fake clock
			// (1600/s); a 800/s rate exhausts the burst mid-sequence.
			"hot": {Rate: 800, Burst: 200},
		},
		Clock: clock,
		OnPlace: func(p placement) {
			mu.Lock()
			log = append(log, p)
			mu.Unlock()
		},
	}
	c, err := NewWithExecutors(cfg, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var shed []int
	tenants := []string{"hot", "a", "b", "c"}
	fns := []core.Function{core.Sigmoid, core.Exp, core.Tanh}
	xs := make([]float32, 64)
	for i := 0; i < 120; i++ {
		// Replica 1 fails for a window in the middle of the sequence:
		// requests placed there fail over and, after enough strikes,
		// quarantine it.
		fakes[1].failing.Store(30 <= i && i < 60)
		tn := tenants[i%len(tenants)]
		fn := fns[i%len(fns)]
		p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
		_, _, err := c.EvaluateBatchTenant(tn, fn, p, xs)
		if errors.Is(err, ErrOverloaded) {
			shed = append(shed, i)
		} else if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	return log, shed
}

// TestRouterDeterministic pins the satellite contract: same seed +
// same request sequence ⇒ identical placement decisions and identical
// shed set, including a replica failure window that quarantines a
// replica mid-sequence.
func TestRouterDeterministic(t *testing.T) {
	log1, shed1 := scriptedRun(t)
	log2, shed2 := scriptedRun(t)
	if len(log1) != len(log2) {
		t.Fatalf("placement logs differ in length: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("placement %d differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	if fmt.Sprint(shed1) != fmt.Sprint(shed2) {
		t.Fatalf("shed sets differ: %v vs %v", shed1, shed2)
	}
	if len(shed1) == 0 {
		t.Fatal("scripted quota never shed — the scenario has lost its teeth")
	}
	// The failure window must actually have exercised failover: some
	// placement names replica 1 and a later one re-placed elsewhere.
	var failoverSeen bool
	for _, p := range log1 {
		if p.Replica != 1 && p.Primary == 1 && !p.Shed {
			failoverSeen = true
		}
	}
	if !failoverSeen {
		t.Fatal("no request was re-placed off replica 1 during its failure window")
	}
}

// TestRouterQuarantineShiftsTraffic verifies the health integration:
// strikes during the failure window quarantine replica 1, after which
// placements skip it without first attempting it.
func TestRouterQuarantineShiftsTraffic(t *testing.T) {
	log, _ := scriptedRun(t)
	// After the window closes (replica healthy again but quarantined),
	// placements with primary 1 must still route elsewhere until the
	// probation penalty lapses.
	post := 0
	for _, p := range log {
		if p.Primary == 1 && p.Replica != 1 {
			post++
		}
	}
	if post == 0 {
		t.Fatal("quarantine never redirected a primary-1 placement")
	}
}

// TestPlaceZeroAlloc pins the routing hot path: placement and key
// hashing allocate nothing, so an N=1 cluster preserves the engine's
// zero-allocation steady state.
func TestPlaceZeroAlloc(t *testing.T) {
	_, execs := newFakes(4)
	c, err := NewWithExecutors(Config{Replication: 2, Seed: 3}, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}.Normalized()
	if avg := testing.AllocsPerRun(200, func() {
		h := keyHash(c.cfg.Seed, core.Sigmoid, p, "tenant-7")
		_ = c.place(h, 1, 0)
	}); avg != 0 {
		t.Fatalf("place+keyHash allocates %.1f objects per request, want 0", avg)
	}
}

// TestRouterConcurrentRace exercises routing, failover, and admission
// under concurrent submitters so the race detector sees the shared
// state (run with -race in CI).
func TestRouterConcurrentRace(t *testing.T) {
	fakes, execs := newFakes(4)
	def := Quota{Rate: 1e7, Burst: 1e7}
	c, err := NewWithExecutors(Config{Replication: 2, Seed: 5, DefaultQuota: &def, MaxQueue: 1 << 20}, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fakes[2].failing.Store(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			xs := make([]float32, 32)
			p := core.Params{Method: core.LLUT, SizeLog2: 10}
			for i := 0; i < 50; i++ {
				tn := fmt.Sprintf("t%d", (g+i)%5)
				if _, _, err := c.EvaluateBatchTenant(tn, core.Exp, p, xs); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Requests != 400 {
		t.Fatalf("requests = %d, want 400", st.Requests)
	}
	if st.Routed[2] != 0 {
		t.Fatalf("failing replica 2 served %d requests", st.Routed[2])
	}
}
