package cluster

import (
	"sort"

	"transpimlib/internal/core"
)

// The router places (function, method, tenant) keys on replicas with
// consistent hashing: each replica owns VirtualNodes points on a
// 64-bit ring, a key hashes to a point, and the key's candidate set
// is the next Replication distinct replicas clockwise. Placement then
// prefers the primary (first candidate) and falls back to the
// least-loaded healthy candidate when the primary is quarantined or
// its backlog exceeds MaxQueue. Everything is a pure function of the
// seed, the key, the health set, and the observed loads — the
// determinism the router tests pin.

// maxReplication caps a key's candidate-set size so placement can use
// fixed-size stack scratch and stay allocation-free on the hot path.
const maxReplication = 16

// splitmix64 is the same finalizer faultsim builds decisions from: a
// bijective avalanche over 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// keyHash folds a placement key — the normalized method parameters,
// the function, and the tenant — into one ring coordinate. It
// allocates nothing: the tenant string is hashed byte-wise.
func keyHash(seed uint64, fn core.Function, p core.Params, tenant string) uint64 {
	h := splitmix64(seed ^ 0xC1A5)
	h = splitmix64(h ^ uint64(fn))
	h = splitmix64(h ^ uint64(p.Method))
	var flags uint64
	if p.Interp {
		flags |= 1
	}
	if p.WideRange {
		flags |= 2
	}
	h = splitmix64(h ^ flags)
	h = splitmix64(h ^ uint64(p.SizeLog2)<<32 ^ uint64(p.Iterations))
	h = splitmix64(h ^ uint64(p.HeadBits)<<32 ^ uint64(p.Degree))
	h = splitmix64(h ^ uint64(p.Placement))
	for i := 0; i < len(tenant); i++ {
		h = splitmix64(h ^ uint64(tenant[i]))
	}
	return h
}

// ringPoint is one virtual node: a hash coordinate owned by a replica.
type ringPoint struct {
	hash    uint64
	replica int
}

// ring is the consistent-hash ring, immutable after construction.
type ring struct {
	points   []ringPoint
	replicas int
}

func newRing(replicas, virtualNodes int, seed uint64) *ring {
	r := &ring{replicas: replicas}
	r.points = make([]ringPoint, 0, replicas*virtualNodes)
	for rep := 0; rep < replicas; rep++ {
		for v := 0; v < virtualNodes; v++ {
			h := splitmix64(splitmix64(seed^uint64(rep)<<20) ^ uint64(v))
			r.points = append(r.points, ringPoint{hash: h, replica: rep})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.replica < b.replica
	})
	return r
}

// candidates fills dst with the first k distinct replicas clockwise
// from h — the key's replica set, primary first — and returns the
// filled prefix. dst must have room for k entries.
func (r *ring) candidates(h uint64, k int, dst []int) []int {
	dst = dst[:0]
	if k > r.replicas {
		k = r.replicas
	}
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	var seen uint64 // replica bitset; replicas ≤ 64 by config validation
	for i := 0; i < n && len(dst) < k; i++ {
		p := r.points[(start+i)%n]
		if seen&(1<<uint(p.replica)) != 0 {
			continue
		}
		seen |= 1 << uint(p.replica)
		dst = append(dst, p.replica)
	}
	return dst
}

// placement is one routing decision, recorded for the determinism
// tests and surfaced (aggregated) through the cluster metrics.
type placement struct {
	Seq     uint64
	Key     uint64
	Primary int
	Replica int  // chosen replica; -1 when shed
	Shed    bool // true when every candidate was over MaxQueue
	Spilled bool // chosen replica is not the primary
}

// place picks a replica for key hash h at sequence seq. loads must
// report each replica's current backlog; avail each replica's health.
// Decision order:
//
//  1. primary, when healthy and under MaxQueue;
//  2. the least-loaded healthy candidate under MaxQueue (ties to the
//     lowest replica index);
//  3. when no candidate is healthy: the least-loaded healthy replica
//     outside the set (failover placement — tables will be built there
//     through the ordinary setup cache);
//  4. when no replica anywhere is healthy: the primary regardless —
//     each engine still has its own recovery ladder and host-mirror
//     last rung, which beats refusing outright;
//  5. shed (replica -1) only when healthy candidates exist but all
//     are over MaxQueue — the backlog form of load shedding.
//
// tried is a bitset of replicas that already failed this request
// (failover); they are skipped everywhere.
func (c *Cluster) place(h uint64, seq uint64, tried uint64) placement {
	var scratch [maxReplication]int
	cands := c.ring.candidates(h, c.cfg.Replication, scratch[:0])
	pl := placement{Seq: seq, Key: h, Primary: cands[0], Replica: -1}

	best, bestLoad := -1, 0
	anyHealthy := false
	for i, rep := range cands {
		if tried&(1<<uint(rep)) != 0 || !c.health.Available(rep, seq) {
			continue
		}
		anyHealthy = true
		load := c.execs[rep].QueueDepth()
		c.met.replicaQueue[rep].Set(int64(load))
		if c.cfg.MaxQueue > 0 && load >= c.cfg.MaxQueue {
			continue
		}
		if i == 0 {
			// Healthy primary under the backlog bound: done.
			pl.Replica = rep
			return pl
		}
		if best == -1 || load < bestLoad || (load == bestLoad && rep < best) {
			best, bestLoad = rep, load
		}
	}
	if best >= 0 {
		pl.Replica, pl.Spilled = best, true
		return pl
	}
	if anyHealthy {
		// Healthy candidates exist but every one is over MaxQueue.
		pl.Shed = true
		return pl
	}
	// The whole candidate set is quarantined: fail over to the
	// least-loaded healthy replica outside it.
	for rep := 0; rep < len(c.execs); rep++ {
		if tried&(1<<uint(rep)) != 0 || !c.health.Available(rep, seq) {
			continue
		}
		load := c.execs[rep].QueueDepth()
		if best == -1 || load < bestLoad {
			best, bestLoad = rep, load
		}
	}
	if best >= 0 {
		pl.Replica, pl.Spilled = best, true
		return pl
	}
	// Nothing is healthy anywhere: serve on the primary anyway (rung
	// 4) — unless it already failed this request, in which case walk
	// the untried replicas and finally give up (Replica stays -1).
	if tried&(1<<uint(cands[0])) == 0 {
		pl.Replica = cands[0]
		return pl
	}
	for rep := 0; rep < len(c.execs); rep++ {
		if tried&(1<<uint(rep)) == 0 {
			pl.Replica = rep
			return pl
		}
	}
	return pl
}
