package cluster

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/profiler"
	"transpimlib/internal/stats"
)

// TestClusterProfilerMergesReplicas: with the profiler on, every
// replica collects, the cluster's merged snapshot reconciles ±0 with
// the per-replica simulators, and both debug endpoints serve
// non-empty payloads from the cluster handler.
func TestClusterProfilerMergesReplicas(t *testing.T) {
	ecfg := engine.Config{DPUs: 2, Shards: 1, MaxBatch: 512}
	cl, err := New(Config{
		Engines:  []engine.Config{ecfg, ecfg},
		Seed:     1,
		Profiler: profiler.Config{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	fn := core.Sigmoid
	p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 10}
	for i := 0; i < 8; i++ {
		xs := stats.RandomInputs(-6, 6, 64+i, uint64(i))
		if _, _, err := cl.EvaluateBatchTenant("acme", fn, p, xs); err != nil {
			t.Fatal(err)
		}
	}

	merged, ok := cl.ProfileSnapshot()
	if !ok || len(merged.Frames) == 0 {
		t.Fatal("cluster profile empty with profiling enabled")
	}
	var want uint64
	for i := range cl.Stats().Routed {
		want += cl.Replica(i).System().AttributedKernelCycles()
	}
	if merged.TotalWall != want {
		t.Errorf("merged wall %d != sum of replica attributed cycles %d", merged.TotalWall, want)
	}

	// The debug endpoints are mounted on the cluster telemetry and
	// serve the merged profile / per-replica heatmaps.
	h := cl.Observe().Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profile", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/profile status %d: %s", rec.Code, rec.Body.String())
	}
	var got profiler.Profile
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.TotalWall != merged.TotalWall || len(got.Frames) == 0 {
		t.Errorf("/debug/profile wall %d (frames %d), want wall %d",
			got.TotalWall, len(got.Frames), merged.TotalWall)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/heatmap", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/heatmap status %d", rec.Code)
	}
	var hm struct {
		Sources []struct {
			Name string             `json:"name"`
			DPUs []profiler.HeatDPU `json:"dpus"`
		} `json:"sources"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hm); err != nil {
		t.Fatal(err)
	}
	if len(hm.Sources) != 2 {
		t.Fatalf("want 2 heatmap sources, got %d", len(hm.Sources))
	}
	for _, s := range hm.Sources {
		if len(s.DPUs) != 2 {
			t.Errorf("source %q: want 2 DPU rows, got %d", s.Name, len(s.DPUs))
		}
	}
}

// TestClusterProfilerDisabledUnmounted: the zero-value cluster config
// leaves the profile endpoints returning 404.
func TestClusterProfilerDisabledUnmounted(t *testing.T) {
	ecfg := engine.Config{DPUs: 2, Shards: 1}
	cl, err := New(Config{Engines: []engine.Config{ecfg}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, ok := cl.ProfileSnapshot(); ok {
		t.Fatal("profile snapshot ok with profiling disabled")
	}
	rec := httptest.NewRecorder()
	cl.Observe().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profile", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/profile status %d with profiling disabled, want 404", rec.Code)
	}
}
