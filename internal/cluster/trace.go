package cluster

import (
	"fmt"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/telemetry"
)

// reqTrace carries one routed request's cluster-side span tree while
// the placement ladder runs. It exists only when tracing is enabled
// (nil otherwise, so the disabled path takes no timestamps and
// allocates nothing) and lives entirely on the request goroutine —
// no locking until the finished tree is pushed into the tracer ring.
type reqTrace struct {
	id   uint64
	root *telemetry.Span
}

// beginTrace mints the cluster-boundary trace identity and opens the
// root span. Returns nil when tracing is disabled.
func (c *Cluster) beginTrace(tenant string, fn core.Function, p core.Params, n int) *reqTrace {
	if c.tracer == nil {
		return nil
	}
	root := &telemetry.Span{Name: "cluster_request", Proc: "cluster", Start: time.Now()}
	root.SetAttr("fn", fn.String())
	root.SetAttr("method", engine.MethodLabel(p))
	root.SetAttr("elements", fmt.Sprint(n))
	if tenant != "" {
		root.SetAttr("tenant", tenant)
	}
	return &reqTrace{id: c.tracer.NextID(), root: root}
}

// shed records a terminal shed span (admission quota or backlog bound)
// under the root.
func (t *reqTrace) shed(reason string) {
	now := time.Now()
	s := &telemetry.Span{Name: "shed", Start: now, End: now, Err: "overloaded"}
	s.SetAttr("reason", reason)
	t.root.AddChild(s)
}

// attempt opens one placement-ladder rung: the span covers the routing
// decision and, on a served attempt, the execution on the chosen
// replica (whose engine span tree is grafted underneath).
func (t *reqTrace) attempt(pl placement, n int) *telemetry.Span {
	s := &telemetry.Span{Name: fmt.Sprintf("attempt[%d]", n), Start: time.Now()}
	s.SetAttr("primary", fmt.Sprint(pl.Primary))
	s.SetAttr("replica", fmt.Sprint(pl.Replica))
	if pl.Spilled {
		s.SetAttr("spilled", "true")
	}
	t.root.AddChild(s)
	return s
}

// finish closes the root span and publishes the tree. err, when
// non-nil, marks the whole trace failed.
func (t *reqTrace) finish(c *Cluster, err error) {
	t.root.End = time.Now()
	if err != nil {
		t.root.Err = err.Error()
	}
	c.tracer.Push(&telemetry.Trace{ID: t.id, Root: t.root})
}
