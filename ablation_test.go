// Ablation benchmarks for the reproduction's design choices (DESIGN.md
// §4 and §6): the closed-form pipeline model versus the event-level
// simulation, the midpoint-entry/truncating-lookup trick of the
// non-interpolated L-LUT, Cody–Waite versus naive argument reduction,
// table placement, and the double-precision costing of the polynomial
// workload baseline. Each reports host-independent custom metrics.
//
//	go test -bench=Ablation -benchtime=10x
package transpimlib

import (
	"math"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/rangered"
	"transpimlib/internal/stats"
	"transpimlib/internal/workloads"
)

// AblationPipelineModel sweeps tasklet counts and reports the relative
// error of the closed-form cycle formula against the event-level
// pipeline simulation — the justification for modeling tasklets as a
// throughput factor instead of simulating every instruction slot.
func BenchmarkAblationPipelineModel(b *testing.B) {
	cm := pimsim.Default()
	for _, tasklets := range []int{1, 2, 4, 8, 11, 16, 24} {
		b.Run(labelInt("tasklets", tasklets), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				ps := make([]pimsim.PipeProgram, tasklets)
				var issue, dma uint64
				for t := range ps {
					for j := 0; j < 8; j++ {
						ps[t] = append(ps[t], pimsim.PipeOp{Instrs: 250}, pimsim.PipeOp{DMABytes: 8})
						issue += 251
						dma += uint64(cm.MRAMLatency) + uint64(8*cm.MRAMPerByte)
					}
				}
				event := pimsim.SimulatePipeline(ps, cm)
				formula := pimsim.ClosedFormCycles(issue, dma, tasklets)
				rel = math.Abs(float64(event)-float64(formula)) / float64(event)
			}
			b.ReportMetric(rel*100, "formula-err-%")
		})
	}
}

// AblationMidpointTrick compares the non-interpolated L-LUT (midpoint
// entries + truncating lookup) against a grid-entry/rounding-lookup
// table of the same size: the accuracy is the same, the truncating
// lookup is cheaper — the a⁻¹ freedom of §2.2.2 exploited.
func BenchmarkAblationMidpointTrick(b *testing.B) {
	inputs := stats.RandomInputs(0, 2*math.Pi, 4096, 9)

	run := func(b *testing.B, eval func(*pimsim.Ctx, float32) float32, dpu *pimsim.DPU) (float64, float64) {
		ctx := dpu.NewCtx()
		var col stats.Collector
		dpu.ResetCycles()
		for i := 0; i < b.N; i++ {
			x := inputs[i%len(inputs)]
			col.Add(eval(ctx, x), math.Sin(float64(x)))
		}
		return float64(dpu.Cycles()) / float64(b.N), col.Result().RMSE
	}

	b.Run("midpoint-truncate", func(b *testing.B) {
		dpu := pimsim.NewDPU(0, pimsim.Default(), 16)
		t, err := lut.BuildLLUT(math.Sin, 0, 2*math.Pi, 10, false)
		if err != nil {
			b.Fatal(err)
		}
		dev, err := t.Load(dpu, pimsim.InWRAM)
		if err != nil {
			b.Fatal(err)
		}
		cyc, rmse := run(b, dev.Eval, dpu)
		b.ReportMetric(cyc, "pim-cycles/op")
		b.ReportMetric(rmse, "rmse")
	})
	b.Run("grid-round", func(b *testing.B) {
		// Same power-of-two density, grid entries, explicit rounding at
		// lookup time (an M-LUT with k = 2^10).
		dpu := pimsim.NewDPU(0, pimsim.Default(), 16)
		span := 2 * math.Pi
		entries := int(span*1024) + 1
		t, err := lut.BuildMLUT(math.Sin, 0, 2*math.Pi, entries, false)
		if err != nil {
			b.Fatal(err)
		}
		dev, err := t.Load(dpu, pimsim.InWRAM)
		if err != nil {
			b.Fatal(err)
		}
		cyc, rmse := run(b, dev.Eval, dpu)
		b.ReportMetric(cyc, "pim-cycles/op")
		b.ReportMetric(rmse, "rmse")
	})
}

// AblationCodyWaite quantifies what the two-constant reductions buy:
// accuracy of wide-range sine and exp with and without the split
// constants (the naive forms are reconstructed inline).
func BenchmarkAblationCodyWaite(b *testing.B) {
	inputs := stats.RandomInputs(100, 1000, 2048, 11)

	measure := func(b *testing.B, split func(*pimsim.Ctx, float32) (float32, int32)) {
		dpu := pimsim.NewDPU(0, pimsim.Default(), 16)
		ctx := dpu.NewCtx()
		var worst float64
		for i := 0; i < b.N; i++ {
			for _, raw := range inputs {
				x := raw * 0.05 // ±5..50 range
				r, k := split(ctx, x)
				got := float64(r) + float64(k)*math.Ln2
				if e := math.Abs(got - float64(x)); e > worst {
					worst = e
				}
			}
		}
		b.ReportMetric(worst, "reduction-err")
	}
	b.Run("exp-cody-waite", func(b *testing.B) {
		measure(b, rangered.SplitExp)
	})
	b.Run("exp-naive", func(b *testing.B) {
		measure(b, func(ctx *pimsim.Ctx, x float32) (float32, int32) {
			k := ctx.FToIRound(ctx.FMul(x, rangered.Log2E))
			r := ctx.FSub(x, ctx.FMul(ctx.IToF(k), rangered.Ln2)) // single constant
			return r, k
		})
	})
}

// AblationPlacement re-measures the WRAM-vs-MRAM non-difference at
// full pipeline and the difference it makes with a single tasklet
// (where DMA latency can no longer hide).
func BenchmarkAblationPlacement(b *testing.B) {
	inputs := stats.RandomInputs(0, 2*math.Pi, 2048, 13)
	for _, tc := range []struct {
		name     string
		place    pimsim.Placement
		tasklets int
	}{
		{"wram-16t", pimsim.InWRAM, 16},
		{"mram-16t", pimsim.InMRAM, 16},
		{"wram-1t", pimsim.InWRAM, 1},
		{"mram-1t", pimsim.InMRAM, 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dpu := pimsim.NewDPU(0, pimsim.Default(), tc.tasklets)
			op, err := core.Build(core.Sin,
				core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12, Placement: tc.place}, dpu)
			if err != nil {
				b.Fatal(err)
			}
			dpu.ResetCycles()
			ctx := dpu.NewCtx()
			for i := 0; i < b.N; i++ {
				op.Eval(ctx, inputs[i%len(inputs)])
			}
			b.ReportMetric(float64(dpu.Cycles())/float64(b.N), "pim-cycles/op")
		})
	}
}

// AblationBaselinePrecision shows how much of the Blackscholes
// poly-baseline gap comes from the double-precision costing versus the
// term count: the same polynomial kit priced with single-precision
// float costs.
func BenchmarkAblationBaselinePrecision(b *testing.B) {
	opts := workloads.GenOptions(4*1000, 21)
	double := workloads.PolyBaselineKit()
	single := double
	single.Name = "pim-poly-single"
	single.Cost = pimsim.Default()
	for _, kit := range []workloads.Kit{double, single, workloads.LLUTIKit(12)} {
		b.Run(kit.Name, func(b *testing.B) {
			var r workloads.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = workloads.BlackscholesPIM(4, opts, kit)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KernelSeconds, "kernel-s")
		})
	}
}

func labelInt(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
