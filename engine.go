package transpimlib

import (
	"fmt"
	"log/slog"
	"time"

	"transpimlib/internal/accwatch"
	"transpimlib/internal/engine"
	"transpimlib/internal/faultsim"
	"transpimlib/internal/profiler"
	"transpimlib/internal/telemetry"
)

// ErrEngineClosed is returned by Engine.EvaluateBatch after Close.
var ErrEngineClosed = engine.ErrEngineClosed

// EngineConfig configures a serving Engine. The zero value is an
// 8-core system split into 2 shards with double-buffered pipelines.
type EngineConfig struct {
	// DPUs is the number of simulated PIM cores (default 8).
	DPUs int
	// Shards is the number of independent pipeline groups; DPUs must
	// be divisible by Shards (default: 2 when DPUs is even, else 1).
	Shards int
	// MaxBatch bounds the elements dispatched as one batch (default
	// 4096); larger requests split, smaller concurrent ones coalesce.
	MaxBatch int
	// BatchWindow is how long the batcher holds a request to let more
	// arrive and coalesce (default 0: coalesce only what is queued).
	BatchWindow time.Duration
	// QueueDepth bounds pending requests; callers block when full
	// (default 64).
	QueueDepth int
	// Buffers is the number of MRAM I/O buffer slots per shard
	// (default 2: transfer-in double-buffers against compute).
	Buffers int
	// TraceDepth retains the span trees of the last N completed
	// requests, readable via TraceLast/Traces and servable at
	// /debug/trace (default 0: tracing disabled, no per-stage
	// timestamps are taken).
	TraceDepth int
	// ProcName names this engine's process lane in Chrome trace
	// exports (e.g. "replica/2"); spans inherit it down the tree.
	// Empty uses the exporter default. NewCluster stamps one per
	// replica automatically.
	ProcName string
	// Ledger enables the per-tenant cost ledger: every served request
	// is charged to its (tenant, function, method) row — elements,
	// modeled kernel cycles, host↔PIM bytes, degraded serves — with
	// exact integer partitioning of coalesced batches, so the ledger's
	// cycle total reconciles ±0 with the simulator's. Read it via
	// Engine.Ledger, /debug/ledger, or the tenant_* metric series.
	// Off (the default) the serving path is bit-identical to an
	// unledgered engine.
	Ledger bool
	// Timeline enables the windowed metrics store: a background
	// sampler snapshots the registry's series into a ring of aligned
	// windows, served at /debug/timeline with per-window rates and
	// histogram quantiles. Timeline.Enabled false (the default)
	// disables it entirely.
	Timeline TimelineConfig
	// Profile enables per-DPU kernel-launch profiling: instruction-
	// class and per-core cycle counters accumulate into the telemetry
	// registry as pim_* series (default off).
	Profile bool
	// Profiler enables the continuous modeled-cycle profiler: every
	// launch's cycles are attributed to a (tenant, function, method,
	// stage, instruction class) stack in a lock-cheap aggregation
	// tree, with per-DPU issue/DMA/idle heatmap accounting over a ring
	// of time windows. Read it via Engine.Profile*, /debug/profile
	// (folded flamegraph text, pprof profile.proto, or JSON), and
	// /debug/heatmap. Profiler.Enabled false (the default) leaves the
	// hot path untouched — no observer is installed.
	Profiler ProfilerConfig
	// Reference forces the per-element interpreted compute kernel
	// instead of the fused batch fast path. Outputs and modeled cycles
	// are bit-identical either way; only host wall time differs.
	// Default off (fast path).
	Reference bool
	// Faults, when non-empty, enables deterministic fault injection
	// with the engine's recovery ladder (retry → remap → hedge →
	// host-mirror degrade). The syntax is the faultsim plan language,
	// e.g. "seed=42,dpufail=0.05,dpuslow=0.1x4,bitflip=0.01,transfer=0.02"
	// or deterministic triggers "failat=3:1;4:1". Empty (the default)
	// disables injection entirely — the pipeline is then bit-identical
	// to earlier releases.
	Faults string
	// Reliability tunes the recovery ladder (zero value: defaults);
	// only consulted when Faults is set.
	Reliability ReliabilityConfig
	// Accuracy enables the online accuracy watcher: a deterministic
	// shadow sampler re-evaluates a configurable fraction of each
	// request's elements against the float64 host reference and keeps
	// per-(function, method, tenant) ULP/absolute-error statistics,
	// input-domain coverage, and rolling-window SLO/drift checks.
	// Disabled (the default) the serving path is untouched — outputs,
	// modeled cycles, and allocation behavior are bit-identical to an
	// engine without the watcher.
	Accuracy AccuracyConfig
	// Log receives structured recovery and accuracy events (quarantine
	// transitions, host-mirror degrades, table repairs, SLO breaches,
	// drift). Nil disables event logging; metrics are unaffected.
	Log *slog.Logger
}

// ReliabilityConfig tunes the engine's recovery ladder under fault
// injection: retry counts and modeled backoff, quarantine/probation
// thresholds, the straggler launch timeout, and the hedge ratio.
type ReliabilityConfig = engine.ReliabilityConfig

// AccuracyConfig tunes the online accuracy watcher: shadow-sampling
// rate and seed, rolling-window size, series cardinality cap, drift
// sensitivity, and the accuracy SLOs to enforce.
type AccuracyConfig = accwatch.Config

// AccuracySLO is one accuracy service-level objective: bounds on mean
// absolute error and mean ULP error, scoped by function / method /
// tenant patterns ("" or "*" match anything).
type AccuracySLO = accwatch.SLO

// AccuracySnapshot is a point-in-time view of the watcher's
// shadow-sample statistics, one series per observed
// (function, method, tenant) triple. It is what /debug/accuracy
// serves as JSON.
type AccuracySnapshot = accwatch.Snapshot

// AccuracyViolation is one failed SLO check from
// Engine.AccuracyViolations — the cumulative (whole-session) gate.
type AccuracyViolation = accwatch.Violation

// FaultEvent is one injected fault, identified by its deterministic
// coordinates (class, batch sequence, lane, attempt) so identical
// seeds yield identical logs.
type FaultEvent = faultsim.Event

// LaneHealth is one PIM core's row of the engine's health scoreboard.
type LaneHealth = engine.LaneHealth

// RequestStats is the per-request cost report of Engine.EvaluateBatch:
// wall-clock latency plus modeled per-stage (transfer-in / compute /
// transfer-out) and setup costs.
type RequestStats = engine.RequestStats

// EngineStats is the engine-wide accumulated counter view.
type EngineStats = engine.Stats

// Telemetry is an engine's observability handle: the metrics registry
// behind Stats (Prometheus text exposition via WritePrometheus or the
// Handler's /metrics endpoint) and, when EngineConfig.TraceDepth is
// set, the request tracer behind /debug/trace.
type Telemetry = telemetry.Telemetry

// Trace is one request's completed span tree.
type Trace = telemetry.Trace

// Span is one timed region of a request's journey through the
// pipeline, carrying both wall-clock and modeled-seconds durations.
type Span = telemetry.Span

// TimelineConfig tunes the windowed metrics store: sampling window
// width, retained window count, and which histogram quantiles the
// snapshots carry.
type TimelineConfig = telemetry.TimelineConfig

// TimelineWindow is one closed window of the metrics timeline:
// derived series values (counter rates, gauge values, histogram
// quantiles) sampled over [Start, End).
type TimelineWindow = telemetry.TimelineWindow

// TimelineSnapshot is a point-in-time view of the windowed metrics
// store — per-series aligned windows with values, rates, and
// histogram quantiles. It is what /debug/timeline serves as JSON.
type TimelineSnapshot = telemetry.TimelineSnapshot

// LedgerKey identifies one cost-ledger row: the (tenant, function,
// method) triple charges accrue to.
type LedgerKey = telemetry.LedgerKey

// LedgerEntry is the accumulated charges of one ledger row: requests,
// elements, modeled kernel cycles, host↔PIM bytes, modeled seconds,
// and degrade/shed/failover counts.
type LedgerEntry = telemetry.LedgerEntry

// LedgerRow is one key's entry in a ledger snapshot.
type LedgerRow = telemetry.LedgerRow

// LedgerSnapshot is a point-in-time view of the cost ledger, one row
// per observed (tenant, function, method) triple plus an overflow row
// when the cardinality cap was hit. It is what /debug/ledger serves
// as JSON.
type LedgerSnapshot = telemetry.LedgerSnapshot

// ProfilerConfig tunes the modeled-cycle profiler: heatmap window
// width and retained window count, and the frame cardinality cap.
type ProfilerConfig = profiler.Config

// CycleProfile is a point-in-time view of the modeled-cycle profiler:
// cumulative totals plus one frame per observed (tenant, function,
// method, stage, instruction class) stack. It is what /debug/profile
// serves as JSON; use profiler's folded/pprof writers for the
// flamegraph formats.
type CycleProfile = profiler.Profile

// CycleFrame is one aggregation-tree leaf of a CycleProfile: a fully
// labeled stack with its attributed ops, instruction-class cycles,
// and exact wall-cycle share.
type CycleFrame = profiler.Frame

// CycleHeatmap is the per-DPU utilization view: cumulative
// issue/DMA/idle cycle shares per core plus the retained time
// windows. It is what /debug/heatmap serves per source.
type CycleHeatmap = profiler.Heatmap

// Engine is a long-lived serving runtime over a multi-core PIM
// system: a table/setup cache keyed by (function, method, LUT size,
// placement), request coalescing and sharding, and a pipelined
// transfer/compute/drain datapath per shard. Unlike Lib — one
// statically compiled configuration on one core — an Engine serves
// any supported (function, method) mix on demand and is safe for
// concurrent use.
type Engine struct {
	e *engine.Engine
}

// internal converts the public EngineConfig to the internal engine
// configuration, parsing the fault plan. Shared by NewEngine and
// NewCluster (which stamps one internal config per replica).
func (cfg EngineConfig) internal() (engine.Config, error) {
	var plan *faultsim.Plan
	if cfg.Faults != "" {
		p, err := faultsim.ParsePlan(cfg.Faults)
		if err != nil {
			return engine.Config{}, err
		}
		plan = &p
	}
	return engine.Config{
		DPUs:        cfg.DPUs,
		Shards:      cfg.Shards,
		MaxBatch:    cfg.MaxBatch,
		BatchWindow: cfg.BatchWindow,
		QueueDepth:  cfg.QueueDepth,
		Buffers:     cfg.Buffers,
		TraceDepth:  cfg.TraceDepth,
		ProcName:    cfg.ProcName,
		Ledger:      cfg.Ledger,
		Timeline:    cfg.Timeline,
		Profile:     cfg.Profile,
		Profiler:    cfg.Profiler,
		Reference:   cfg.Reference,
		Faults:      plan,
		Reliability: cfg.Reliability,
		Accuracy:    cfg.Accuracy,
		Log:         cfg.Log,
	}, nil
}

// NewEngine builds and starts a serving engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, fmt.Errorf("transpimlib: %w", err)
	}
	e, err := engine.New(icfg)
	if err != nil {
		return nil, fmt.Errorf("transpimlib: %w", err)
	}
	return &Engine{e: e}, nil
}

// EvaluateBatch evaluates fn over xs with the method configuration in
// spec (spec.PIM must be nil: the engine owns its own cores) and
// returns the outputs plus the request's cost report. The first
// request for a configuration pays table generation and broadcast;
// subsequent ones hit the setup cache. Safe for concurrent use.
func (e *Engine) EvaluateBatch(fn Function, spec Config, xs []float32) ([]float32, RequestStats, error) {
	if spec.PIM != nil {
		return nil, RequestStats{}, fmt.Errorf("transpimlib: EngineConfig owns its PIM system; Config.PIM must be nil")
	}
	return e.e.EvaluateBatch(fn, spec.params(), xs)
}

// EvaluateBatchAs is EvaluateBatch with a tenant tag: the accuracy
// watcher attributes the request's shadow samples to the
// (function, method, tenant) series, so per-client quality is
// separable in /debug/accuracy. The tag does not affect batching,
// coalescing, or results; an empty tenant is the anonymous series.
func (e *Engine) EvaluateBatchAs(tenant string, fn Function, spec Config, xs []float32) ([]float32, RequestStats, error) {
	if spec.PIM != nil {
		return nil, RequestStats{}, fmt.Errorf("transpimlib: EngineConfig owns its PIM system; Config.PIM must be nil")
	}
	return e.e.EvaluateBatchTenant(tenant, fn, spec.params(), xs)
}

// Stats returns a snapshot of the engine-wide counters.
func (e *Engine) Stats() EngineStats { return e.e.Stats() }

// Observe returns the engine's telemetry handle — the metrics
// registry plus the request tracer. Observe().Handler() is an
// http.Handler serving /metrics (Prometheus text format) and
// /debug/trace (span trees as JSON, or ?format=chrome for a Chrome
// trace_event document).
func (e *Engine) Observe() *Telemetry { return e.e.Observe() }

// TraceLast returns the span tree of the most recently completed
// request, or false when tracing is disabled (TraceDepth 0) or no
// request has completed yet.
func (e *Engine) TraceLast() (*Trace, bool) { return e.e.TraceLast() }

// Traces returns the retained request traces, oldest first (nil when
// tracing is disabled).
func (e *Engine) Traces() []*Trace { return e.e.Traces() }

// Ledger returns a point-in-time snapshot of the per-tenant cost
// ledger (empty when EngineConfig.Ledger is off).
func (e *Engine) Ledger() LedgerSnapshot { return e.e.Ledger() }

// ProfileSnapshot returns a point-in-time modeled-cycle profile; ok
// is false when EngineConfig.Profiler is disabled. The profile's wall
// cycles reconcile ±0 with the simulator's attributed kernel cycles
// and with the ledger's per-tenant rows.
func (e *Engine) ProfileSnapshot() (CycleProfile, bool) { return e.e.ProfileSnapshot() }

// Heatmap returns the per-DPU utilization heatmap (zero value when
// EngineConfig.Profiler is disabled).
func (e *Engine) Heatmap() CycleHeatmap {
	if c := e.e.Profiler(); c != nil {
		return c.HeatmapSnapshot()
	}
	return CycleHeatmap{}
}

// CachedSpecs returns how many (function, method) configurations
// currently hold resident tables.
func (e *Engine) CachedSpecs() int { return e.e.CachedSpecs() }

// FaultEvents returns the canonically sorted injected-fault log (nil
// when fault injection is disabled). For a single-shard engine fed
// sequentially, identical seeds reproduce identical logs.
func (e *Engine) FaultEvents() []FaultEvent { return e.e.FaultEvents() }

// Health returns the per-DPU health scoreboard (nil when fault
// injection is disabled).
func (e *Engine) Health() []LaneHealth { return e.e.Health() }

// Accuracy returns a point-in-time snapshot of the accuracy watcher's
// shadow-sample statistics; ok is false when accuracy monitoring is
// disabled.
func (e *Engine) Accuracy() (AccuracySnapshot, bool) { return e.e.Accuracy() }

// AccuracyViolations evaluates the configured accuracy SLOs against
// the cumulative shadow-sample statistics, returning the failures
// (nil when monitoring is disabled or every series is within bounds).
// Use it as an end-of-session accuracy gate.
func (e *Engine) AccuracyViolations() []AccuracyViolation { return e.e.AccuracyViolations() }

// Close drains in-flight work and stops the engine.
func (e *Engine) Close() { e.e.Close() }
