package transpimlib

import (
	"fmt"
	"time"

	"transpimlib/internal/engine"
)

// EngineConfig configures a serving Engine. The zero value is an
// 8-core system split into 2 shards with double-buffered pipelines.
type EngineConfig struct {
	// DPUs is the number of simulated PIM cores (default 8).
	DPUs int
	// Shards is the number of independent pipeline groups; DPUs must
	// be divisible by Shards (default: 2 when DPUs is even, else 1).
	Shards int
	// MaxBatch bounds the elements dispatched as one batch (default
	// 4096); larger requests split, smaller concurrent ones coalesce.
	MaxBatch int
	// BatchWindow is how long the batcher holds a request to let more
	// arrive and coalesce (default 0: coalesce only what is queued).
	BatchWindow time.Duration
	// QueueDepth bounds pending requests; callers block when full
	// (default 64).
	QueueDepth int
	// Buffers is the number of MRAM I/O buffer slots per shard
	// (default 2: transfer-in double-buffers against compute).
	Buffers int
}

// RequestStats is the per-request cost report of Engine.EvaluateBatch:
// wall-clock latency plus modeled per-stage (transfer-in / compute /
// transfer-out) and setup costs.
type RequestStats = engine.RequestStats

// EngineStats is the engine-wide accumulated counter view.
type EngineStats = engine.Stats

// Engine is a long-lived serving runtime over a multi-core PIM
// system: a table/setup cache keyed by (function, method, LUT size,
// placement), request coalescing and sharding, and a pipelined
// transfer/compute/drain datapath per shard. Unlike Lib — one
// statically compiled configuration on one core — an Engine serves
// any supported (function, method) mix on demand and is safe for
// concurrent use.
type Engine struct {
	e *engine.Engine
}

// NewEngine builds and starts a serving engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	e, err := engine.New(engine.Config{
		DPUs:        cfg.DPUs,
		Shards:      cfg.Shards,
		MaxBatch:    cfg.MaxBatch,
		BatchWindow: cfg.BatchWindow,
		QueueDepth:  cfg.QueueDepth,
		Buffers:     cfg.Buffers,
	})
	if err != nil {
		return nil, fmt.Errorf("transpimlib: %w", err)
	}
	return &Engine{e: e}, nil
}

// EvaluateBatch evaluates fn over xs with the method configuration in
// spec (spec.PIM must be nil: the engine owns its own cores) and
// returns the outputs plus the request's cost report. The first
// request for a configuration pays table generation and broadcast;
// subsequent ones hit the setup cache. Safe for concurrent use.
func (e *Engine) EvaluateBatch(fn Function, spec Config, xs []float32) ([]float32, RequestStats, error) {
	if spec.PIM != nil {
		return nil, RequestStats{}, fmt.Errorf("transpimlib: EngineConfig owns its PIM system; Config.PIM must be nil")
	}
	return e.e.EvaluateBatch(fn, spec.params(), xs)
}

// Stats returns a snapshot of the engine-wide counters.
func (e *Engine) Stats() EngineStats { return e.e.Stats() }

// CachedSpecs returns how many (function, method) configurations
// currently hold resident tables.
func (e *Engine) CachedSpecs() int { return e.e.CachedSpecs() }

// Close drains in-flight work and stops the engine.
func (e *Engine) Close() { e.e.Close() }
