// Activation layers on the PIM core: sigmoid, tanh, GELU and softmax
// over a batch of pre-activations, the machine-learning use case the
// paper motivates (activation functions running next to the data
// instead of shuttling it to the host, Figure 1(b) vs 1(c)).
//
// tanh and GELU use the DL-LUT — the method Key Takeaway 4 recommends
// for approximately-linear activation functions — while sigmoid and
// softmax build on the exponential from an interpolated L-LUT.
package main

import (
	"fmt"
	"math"

	"transpimlib"
)

func main() {
	// One library per method family, sharing nothing but the design.
	dlLib, err := transpimlib.New(transpimlib.Config{
		Method:       transpimlib.DLLUT,
		Interpolated: true,
		SizeLog2:     12,
	}, transpimlib.Tanh, transpimlib.GELU)
	if err != nil {
		panic(err)
	}
	expLib, err := transpimlib.New(transpimlib.Config{
		Method:       transpimlib.LLUT,
		Interpolated: true,
		SizeLog2:     12,
	}, transpimlib.Exp)
	if err != nil {
		panic(err)
	}

	// A small batch of pre-activations.
	batch := make([]float32, 16)
	for i := range batch {
		batch[i] = float32(i)/2 - 4 // -4 … 3.5
	}

	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "x", "sigmoid", "tanh", "gelu", "softmax")
	soft := softmax(expLib, batch)
	for i, x := range batch {
		fmt.Printf("%-8.2f %-10.6f %-10.6f %-10.6f %-10.6f\n",
			x, sigmoid(expLib, x), dlLib.Tanhf(x), dlLib.Geluf(x), soft[i])
	}

	// Cross-check the worst error per activation against the host.
	var worstSig, worstTanh, worstGelu float64
	for _, x := range batch {
		worstSig = math.Max(worstSig, math.Abs(float64(sigmoid(expLib, x))-1/(1+math.Exp(-float64(x)))))
		worstTanh = math.Max(worstTanh, math.Abs(float64(dlLib.Tanhf(x))-math.Tanh(float64(x))))
		g := 0.5 * float64(x) * (1 + math.Erf(float64(x)/math.Sqrt2))
		worstGelu = math.Max(worstGelu, math.Abs(float64(dlLib.Geluf(x))-g))
	}
	fmt.Printf("\nworst batch error: sigmoid %.2g, tanh %.2g, gelu %.2g\n",
		worstSig, worstTanh, worstGelu)

	var sum float64
	for _, v := range soft {
		sum += float64(v)
	}
	fmt.Printf("softmax outputs sum to %.6f\n", sum)
	fmt.Printf("\nPIM cycles — exp-based lib: %d, DL-LUT lib: %d\n",
		expLib.Cycles(), dlLib.Cycles())
}

func sigmoid(lib *transpimlib.Lib, x float32) float32 {
	return 1 / (1 + lib.Expf(-x))
}

func softmax(lib *transpimlib.Lib, xs []float32) []float32 {
	out := make([]float32, len(xs))
	var sum float32
	for i, x := range xs {
		out[i] = lib.Expf(x)
		sum += out[i]
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
	return out
}
