// Blackscholes option pricing on the PIM core through the public API —
// the paper's first full workload (§4.1.2). The kernel uses
// TransPimLib's exp, log and sqrt plus an Abramowitz–Stegun cumulative
// normal distribution built on the library's exponential, prices a
// small portfolio, and reports accuracy against a float64 host
// reference and the modeled PIM cycle cost.
package main

import (
	"fmt"
	"math"

	"transpimlib"
)

type option struct {
	spot, strike, rate, vol, tm float64
	call                        bool
}

func main() {
	lib, err := transpimlib.New(transpimlib.Config{
		Method:       transpimlib.LLUT,
		Interpolated: true,
		SizeLog2:     12,
		Placement:    transpimlib.InMRAM,
	}, transpimlib.Exp, transpimlib.Log, transpimlib.Sqrt)
	if err != nil {
		panic(err)
	}

	portfolio := []option{
		{spot: 42, strike: 40, rate: 0.10, vol: 0.20, tm: 0.5, call: true},
		{spot: 42, strike: 40, rate: 0.10, vol: 0.20, tm: 0.5, call: false},
		{spot: 100, strike: 95, rate: 0.05, vol: 0.35, tm: 1.0, call: true},
		{spot: 60, strike: 65, rate: 0.08, vol: 0.30, tm: 0.25, call: false},
		{spot: 25, strike: 70, rate: 0.10, vol: 0.45, tm: 2.0, call: true},
	}

	fmt.Printf("%-30s %-12s %-12s %s\n", "option", "PIM price", "host price", "abs err")
	for _, o := range portfolio {
		pim := price(lib, o)
		host := priceHost(o)
		kind := "put"
		if o.call {
			kind = "call"
		}
		desc := fmt.Sprintf("S=%g K=%g v=%g T=%g %s", o.spot, o.strike, o.vol, o.tm, kind)
		fmt.Printf("%-30s %-12.5f %-12.5f %.2g\n", desc, pim, host, math.Abs(float64(pim)-host))
	}
	fmt.Printf("\ntotal PIM cycles: %d (%.1f per option)\n",
		lib.Cycles(), float64(lib.Cycles())/float64(len(portfolio)))
}

// cndf is the Abramowitz–Stegun 26.2.17 cumulative normal distribution
// with the exponential supplied by TransPimLib, as the PIM kernel
// computes it.
func cndf(lib *transpimlib.Lib, x float32) float32 {
	const gamma = 0.2316419
	b := [5]float32{0.319381530, -0.356563782, 1.781477937, -1.821255978, 1.330274429}
	ax := x
	if ax < 0 {
		ax = -ax
	}
	k := 1 / (1 + gamma*ax)
	acc := b[4]
	for i := 3; i >= 0; i-- {
		acc = acc*k + b[i]
	}
	pdf := float32(0.3989423) * lib.Expf(-0.5*ax*ax)
	res := 1 - pdf*acc*k
	if x < 0 {
		return 1 - res
	}
	return res
}

func price(lib *transpimlib.Lib, o option) float32 {
	s, k := float32(o.spot), float32(o.strike)
	r, v, t := float32(o.rate), float32(o.vol), float32(o.tm)
	sqrtT := lib.Sqrtf(t)
	d1 := (lib.Logf(s/k) + (r+v*v/2)*t) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	disc := k * lib.Expf(-r*t)
	if o.call {
		return s*cndf(lib, d1) - disc*cndf(lib, d2)
	}
	return disc*(1-cndf(lib, d2)) - s*(1-cndf(lib, d1))
}

func priceHost(o option) float64 {
	phi := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	sqrtT := math.Sqrt(o.tm)
	d1 := (math.Log(o.spot/o.strike) + (o.rate+o.vol*o.vol/2)*o.tm) / (o.vol * sqrtT)
	d2 := d1 - o.vol*sqrtT
	disc := o.strike * math.Exp(-o.rate*o.tm)
	if o.call {
		return o.spot*phi(d1) - disc*phi(d2)
	}
	return disc*phi(-d2) - o.spot*phi(-d1)
}
