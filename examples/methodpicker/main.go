// Methodpicker turns the paper's Key Takeaways 1-3 into executable
// advice: given an accuracy target, a PIM memory budget, and the
// number of operations a kernel will perform, it measures every
// candidate configuration through the public API and prints the ranked
// choices. Run it with different budgets to watch the recommendation
// flip from L-LUT (many ops, plenty of memory) to CORDIC (few ops or
// tight memory) exactly as §4.2 describes.
//
//	methodpicker -fn sin -rmse 1e-6 -mem 16384 -ops 40
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"transpimlib"
	"transpimlib/internal/stats"
)

var (
	flagFn   = flag.String("fn", "sin", "function to plan for")
	flagRMSE = flag.Float64("rmse", 1e-6, "target RMSE")
	flagMem  = flag.Int("mem", 64<<10, "PIM memory budget in bytes")
	flagOps  = flag.Float64("ops", 1000, "operations the kernel will execute")
)

type candidate struct {
	label        string
	rmse         float64
	cycles       float64
	setupSeconds float64
	tableBytes   int
	totalSeconds float64 // setup + ops × cycles at 350 MHz
}

func main() {
	flag.Parse()
	var fn transpimlib.Function
	found := false
	for _, f := range transpimlib.Functions() {
		if f.String() == *flagFn {
			fn, found = f, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown function %q\n", *flagFn)
		os.Exit(2)
	}

	lo, hi := fn.Domain()
	inputs := stats.RandomInputs(lo, hi, 4096, 42)
	ref := fn.Ref()

	var fits, misses []candidate
	try := func(cfg transpimlib.Config, label string) {
		lib, err := transpimlib.New(cfg, fn)
		if err != nil {
			return // does not fit the selected memory at all
		}
		var col stats.Collector
		for _, x := range inputs {
			col.Add(lib.Eval(fn, x), ref(float64(x)))
		}
		e := col.Result()
		c := candidate{
			label:        label,
			rmse:         e.RMSE,
			cycles:       float64(lib.Cycles()) / float64(len(inputs)),
			setupSeconds: lib.SetupSeconds(),
			tableBytes:   lib.TableBytes(),
		}
		c.totalSeconds = c.setupSeconds + *flagOps*c.cycles/350e6
		if e.RMSE <= *flagRMSE && c.tableBytes <= *flagMem {
			fits = append(fits, c)
		} else {
			misses = append(misses, c)
		}
	}

	for _, size := range []int{8, 10, 12, 14, 16, 18} {
		for _, interp := range []bool{false, true} {
			for _, m := range []transpimlib.Method{transpimlib.MLUT, transpimlib.LLUT, transpimlib.LLUTFixed, transpimlib.DLUT, transpimlib.DLLUT} {
				if !transpimlib.Supports(m, fn) {
					continue
				}
				label := fmt.Sprintf("%v size=2^%d", m, size)
				if interp {
					label = fmt.Sprintf("%v(i) size=2^%d", m, size)
				}
				try(transpimlib.Config{Method: m, Interpolated: interp, SizeLog2: size,
					Placement: transpimlib.InMRAM}, label)
			}
		}
	}
	if transpimlib.Supports(transpimlib.CORDIC, fn) {
		for _, it := range []int{16, 24, 32, 40} {
			try(transpimlib.Config{Method: transpimlib.CORDIC, Iterations: it},
				fmt.Sprintf("cordic it=%d", it))
		}
	}
	if transpimlib.Supports(transpimlib.CORDICLUT, fn) {
		for _, it := range []int{12, 20, 28} {
			try(transpimlib.Config{Method: transpimlib.CORDICLUT, HeadBits: 8, Iterations: it},
				fmt.Sprintf("cordic+lut it=%d", it))
		}
	}

	fmt.Printf("planning %v: rmse ≤ %.2g, memory ≤ %d B, %g kernel ops\n\n",
		fn, *flagRMSE, *flagMem, *flagOps)
	if len(fits) == 0 {
		fmt.Println("no configuration meets the constraints; nearest misses:")
		sort.Slice(misses, func(i, j int) bool { return misses[i].rmse < misses[j].rmse })
		for i, c := range misses {
			if i == 5 {
				break
			}
			print1(c)
		}
		return
	}
	// Rank by total time for the kernel's op count (setup amortization
	// is exactly the Figure 6 trade-off).
	sort.Slice(fits, func(i, j int) bool { return fits[i].totalSeconds < fits[j].totalSeconds })
	fmt.Println("configurations meeting the constraints, best first:")
	for i, c := range fits {
		if i == 8 {
			break
		}
		print1(c)
	}
	best := fits[0]
	fmt.Printf("\nrecommendation: %s — %.3g s total for %g ops (%.0f cyc/op, %.3g s setup, %d B)\n",
		best.label, best.totalSeconds, *flagOps, best.cycles, best.setupSeconds, best.tableBytes)
}

func print1(c candidate) {
	fmt.Printf("  %-24s rmse=%9.3g cyc/op=%8.1f setup=%9.3gs mem=%8dB total=%9.3gs\n",
		c.label, c.rmse, c.cycles, c.setupSeconds, c.tableBytes, c.totalSeconds)
}
