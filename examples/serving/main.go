// Serving: drive the long-lived Engine runtime with a mixed
// sigmoid/GELU/exp workload and watch the setup cache do its job —
// the first request per configuration pays the paper's Fig.-6 setup
// cost (table generation + Host→PIM transfer), every later one rides
// resident tables and only pays the pipelined
// transfer-in/compute/transfer-out datapath.
package main

import (
	"fmt"
	"math"
	"sync"

	"transpimlib"
)

func main() {
	// Eight cores in one shard: every batch spreads over all eight
	// banks, and the cold/warm story below is deterministic. (With
	// multiple shards each shard holds its own table replica; the
	// first batch routed to a fresh shard pays a broadcast — but never
	// regenerates the tables.)
	eng, err := transpimlib.NewEngine(transpimlib.EngineConfig{
		DPUs:   8,
		Shards: 1,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	mix := []struct {
		name string
		fn   transpimlib.Function
		cfg  transpimlib.Config
	}{
		{"sigmoid", transpimlib.Sigmoid,
			transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true, SizeLog2: 12}},
		{"gelu", transpimlib.GELU,
			transpimlib.Config{Method: transpimlib.DLLUT, Interpolated: true, SizeLog2: 12}},
		{"exp", transpimlib.Exp,
			transpimlib.Config{Method: transpimlib.LLUTFixed, Interpolated: true, SizeLog2: 12}},
	}

	xs := make([]float32, 1024)
	for i := range xs {
		xs[i] = -2 + 4*float32(i)/float32(len(xs))
	}

	// Round 1: every configuration is cold — tables are generated and
	// broadcast to the serving cores.
	fmt.Println("cold round:")
	for _, m := range mix {
		ys, st, err := eng.EvaluateBatch(m.fn, m.cfg, xs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-8s %4d elems  setup %.3gs  modeled %.3gs  (%s(0.5) = %.4f)\n",
			m.name, len(ys), st.SetupSeconds, st.ModeledSeconds(), m.name, ys[len(xs)*5/8])
	}

	// Round 2: same mix, now concurrently — all requests hit resident
	// tables, so setup is zero and only the datapath is charged.
	fmt.Println("warm round (concurrent):")
	var wg sync.WaitGroup
	warm := make([]transpimlib.RequestStats, len(mix))
	for i, m := range mix {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, st, err := eng.EvaluateBatch(m.fn, m.cfg, xs)
			if err != nil {
				panic(err)
			}
			warm[i] = st
		}()
	}
	wg.Wait()
	for i, m := range mix {
		fmt.Printf("  %-8s warm request: cache hit %v, setup %.3gs, modeled %.3gs\n",
			m.name, warm[i].CacheHit, warm[i].SetupSeconds, warm[i].ModeledSeconds())
		if !warm[i].CacheHit || warm[i].SetupSeconds != 0 {
			panic("warm request rebuilt tables")
		}
		if math.IsNaN(float64(warm[i].ComputeSeconds)) {
			panic("missing compute cost")
		}
	}

	st := eng.Stats()
	fmt.Printf("\nengine totals: %d requests, %d batches, %d cache hits / %d misses, %d specs resident\n",
		st.Requests, st.Batches, st.CacheHits, st.CacheMisses, eng.CachedSpecs())
}
