// Ray tracing on the PIM core — one of the transcendental-heavy
// application domains the paper's introduction motivates. A tiny
// sphere tracer: camera rays are generated with sine/cosine (field of
// view), sphere intersections need square roots, and shading uses a
// specular term computed through exponentiation. All of that runs on
// TransPimLib's wide-range trig + sqrt + exp, rendering an ASCII image
// and reporting the modeled PIM cycle bill.
package main

import (
	"fmt"
	"math"

	"transpimlib"
)

type vec struct{ x, y, z float32 }

func add(a, b vec) vec           { return vec{a.x + b.x, a.y + b.y, a.z + b.z} }
func sub(a, b vec) vec           { return vec{a.x - b.x, a.y - b.y, a.z - b.z} }
func scale(a vec, s float32) vec { return vec{a.x * s, a.y * s, a.z * s} }
func dot(a, b vec) float32       { return a.x*b.x + a.y*b.y + a.z*b.z }

type sphere struct {
	center vec
	radius float32
}

const (
	width  = 60
	height = 28
)

func main() {
	lib, err := transpimlib.New(transpimlib.Config{
		Method:       transpimlib.LLUT,
		Interpolated: true,
		SizeLog2:     12,
		Placement:    transpimlib.InMRAM,
		WideRange:    true,
	}, transpimlib.Sin, transpimlib.Cos, transpimlib.Sqrt, transpimlib.Exp)
	if err != nil {
		panic(err)
	}

	spheres := []sphere{
		{vec{-0.6, 0, 3}, 0.8},
		{vec{0.9, -0.2, 4}, 0.6},
		{vec{0, -101, 3}, 100}, // floor
	}
	light := vec{-3, 4, -1}
	norm := lib.Sqrtf(dot(light, light))
	light = scale(light, 1/norm)

	const fov = float32(0.9) // radians
	shades := []byte(" .:-=+*#%@")

	var img [height][width]byte
	for py := 0; py < height; py++ {
		for px := 0; px < width; px++ {
			// Camera ray through the pixel: angles via PIM sine/cosine.
			ax := fov * (float32(px)/width - 0.5)
			ay := fov * 0.5 * (0.5 - float32(py)/height)
			dir := vec{
				lib.Sinf(ax) * lib.Cosf(ay),
				lib.Sinf(ay),
				lib.Cosf(ax) * lib.Cosf(ay),
			}
			img[py][px] = shades[trace(lib, spheres, light, dir, len(shades))]
		}
	}

	for _, row := range img {
		fmt.Println(string(row[:]))
	}
	rays := width * height
	fmt.Printf("\n%d rays, %d PIM cycles (%.0f per ray, %.2f ms at 350 MHz)\n",
		rays, lib.Cycles(), float64(lib.Cycles())/float64(rays),
		float64(lib.Cycles())/350e6*1e3)
}

// trace intersects the ray with every sphere (square root per hit
// test) and shades the nearest hit with diffuse + specular terms (the
// specular highlight is exp-based).
func trace(lib *transpimlib.Lib, spheres []sphere, light, dir vec, levels int) int {
	origin := vec{0, 0, 0}
	bestT := float32(math.Inf(1))
	var bestN vec
	for _, s := range spheres {
		oc := sub(origin, s.center)
		b := dot(oc, dir)
		c := dot(oc, oc) - s.radius*s.radius
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		t := -b - lib.Sqrtf(disc)
		if t > 0.01 && t < bestT {
			bestT = t
			hit := add(origin, scale(dir, t))
			n := sub(hit, s.center)
			bestN = scale(n, 1/lib.Sqrtf(dot(n, n)))
		}
	}
	if math.IsInf(float64(bestT), 1) {
		return 0
	}
	diffuse := dot(bestN, light)
	if diffuse < 0 {
		diffuse = 0
	}
	// Specular: exp(k·(h·n−1)) as a cheap Gaussian-lobe highlight.
	half := add(light, scale(dir, -1))
	half = scale(half, 1/lib.Sqrtf(dot(half, half)))
	spec := lib.Expf(24 * (dot(half, bestN) - 1))
	v := 0.15 + 0.7*diffuse + 0.5*spec
	if v > 1 {
		v = 1
	}
	idx := int(v * float32(levels-1))
	if idx >= levels {
		idx = levels - 1
	}
	return idx
}
