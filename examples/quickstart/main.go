// Quickstart: compile a TransPimLib instance, evaluate a few
// transcendental functions "on" the simulated PIM core, and inspect
// what it cost — the three axes of the paper's evaluation (accuracy,
// execution cycles, setup time / memory).
package main

import (
	"fmt"
	"math"

	"transpimlib"
)

func main() {
	// An interpolated LDEXP-based fuzzy lookup table — the method the
	// paper recommends as the best performance/accuracy trade-off
	// (Key Takeaway 1). Tables go to the core's DRAM bank.
	lib, err := transpimlib.New(transpimlib.Config{
		Method:       transpimlib.LLUT,
		Interpolated: true,
		SizeLog2:     12,
		Placement:    transpimlib.InMRAM,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("setup: %.3g s host time, %d bytes of PIM memory\n\n",
		lib.SetupSeconds(), lib.TableBytes())

	type check struct {
		name string
		got  float32
		want float64
	}
	checks := []check{
		{"sin(π/3)", lib.Sinf(float32(math.Pi / 3)), math.Sin(math.Pi / 3)},
		{"cos(1)", lib.Cosf(1), math.Cos(1)},
		{"tanh(0.5)", lib.Tanhf(0.5), math.Tanh(0.5)},
		{"exp(4.2)", lib.Expf(4.2), math.Exp(4.2)},
		{"log(123)", lib.Logf(123), math.Log(123)},
		{"sqrt(2)", lib.Sqrtf(2), math.Sqrt2},
		{"gelu(1)", lib.Geluf(1), 0.5 * (1 + math.Erf(1/math.Sqrt2))},
	}
	fmt.Printf("%-12s %-14s %-14s %s\n", "call", "PIM result", "host math", "abs err")
	for _, c := range checks {
		fmt.Printf("%-12s %-14.7g %-14.7g %.2g\n", c.name, c.got, c.want,
			math.Abs(float64(c.got)-c.want))
	}

	fmt.Printf("\nPIM cycles for the %d calls above: %d (%.1f per call at 350 MHz → %.2f µs)\n",
		len(checks), lib.Cycles(), float64(lib.Cycles())/float64(len(checks)),
		float64(lib.Cycles())/350e6*1e6)

	// The same calls through pure CORDIC: no tables worth mentioning,
	// but far more cycles per call — the Figure 5/6 trade-off.
	cordic, err := transpimlib.New(transpimlib.Config{Method: transpimlib.CORDIC, Iterations: 30},
		transpimlib.Sin, transpimlib.Exp, transpimlib.Log, transpimlib.Sqrt)
	if err != nil {
		panic(err)
	}
	cordic.Sinf(1)
	cordic.Expf(4.2)
	cordic.Logf(123)
	cordic.Sqrtf(2)
	fmt.Printf("CORDIC comparison: %d bytes of tables, %d cycles for 4 calls\n",
		cordic.TableBytes(), cordic.Cycles())
}
