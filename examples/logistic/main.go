// Logistic regression trained on the PIM core — the paper's §1/§2
// motivation for sigmoid support ("commonly used in logistic
// regression to compute the probability of an output event"). Keeping
// the sigmoid next to the data means gradient descent never ships
// activations back to the host (Figure 1(c) instead of 1(b)).
//
// The model learns a 2-feature binary classifier on a synthetic
// dataset with full-batch gradient descent; the sigmoid runs through
// TransPimLib's interpolated DL-LUT (the activation-suited method of
// Key Takeaway 4).
package main

import (
	"fmt"
	"math"

	"transpimlib"
	"transpimlib/internal/stats"
)

func main() {
	lib, err := transpimlib.New(transpimlib.Config{
		Method:       transpimlib.DLLUT,
		Interpolated: true,
		SizeLog2:     12,
	}, transpimlib.Sigmoid)
	if err != nil {
		panic(err)
	}

	// Synthetic dataset: two Gaussian-ish blobs, separable by the line
	// 2x − 1.5y + 0.5 = 0 with some overlap.
	const n = 2000
	xs := stats.RandomInputs(-2, 2, n, 101)
	ys := stats.RandomInputs(-2, 2, n, 202)
	noise := stats.RandomInputs(-0.4, 0.4, n, 303)
	labels := make([]float32, n)
	for i := 0; i < n; i++ {
		score := 2*xs[i] - 1.5*ys[i] + 0.5 + noise[i]
		if score > 0 {
			labels[i] = 1
		}
	}

	// Full-batch gradient descent with the PIM sigmoid.
	var w1, w2, b float32
	const lr = 0.5
	const epochs = 60
	for epoch := 0; epoch < epochs; epoch++ {
		var g1, g2, gb float32
		for i := 0; i < n; i++ {
			z := w1*xs[i] + w2*ys[i] + b
			p := lib.Sigmoidf(clamp(z))
			d := p - labels[i]
			g1 += d * xs[i]
			g2 += d * ys[i]
			gb += d
		}
		w1 -= lr * g1 / n
		w2 -= lr * g2 / n
		b -= lr * gb / n
		if (epoch+1)%20 == 0 {
			fmt.Printf("epoch %2d: loss=%.4f acc=%.1f%%  w=(%.3f, %.3f) b=%.3f\n",
				epoch+1, loss(lib, xs, ys, labels, w1, w2, b),
				100*accuracy(lib, xs, ys, labels, w1, w2, b), w1, w2, b)
		}
	}

	// The learned boundary direction should align with (2, −1.5).
	angLearned := math.Atan2(float64(w2), float64(w1))
	angTrue := math.Atan2(-1.5, 2)
	fmt.Printf("\nboundary angle: learned %.1f°, true %.1f°\n",
		angLearned*180/math.Pi, angTrue*180/math.Pi)
	fmt.Printf("PIM cycles for training: %d (%d sigmoid calls)\n",
		lib.Cycles(), epochs*n+2*3*n)
}

func clamp(z float32) float32 {
	if z > 7.9 {
		return 7.9
	}
	if z < -7.9 {
		return -7.9
	}
	return z
}

func loss(lib *transpimlib.Lib, xs, ys, labels []float32, w1, w2, b float32) float64 {
	var l float64
	for i := range xs {
		p := float64(lib.Sigmoidf(clamp(w1*xs[i] + w2*ys[i] + b)))
		p = math.Min(math.Max(p, 1e-7), 1-1e-7)
		if labels[i] > 0.5 {
			l -= math.Log(p)
		} else {
			l -= math.Log(1 - p)
		}
	}
	return l / float64(len(xs))
}

func accuracy(lib *transpimlib.Lib, xs, ys, labels []float32, w1, w2, b float32) float64 {
	correct := 0
	for i := range xs {
		p := lib.Sigmoidf(clamp(w1*xs[i] + w2*ys[i] + b))
		if (p > 0.5) == (labels[i] > 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
