module transpimlib

go 1.22
