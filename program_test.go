package transpimlib

import (
	"math"
	"testing"

	"transpimlib/internal/pimsim"
)

// TestPublicProgramAPI drives the fused-program surface through the
// public boundary: build, compile, evaluate, and check the result and
// byte accounting against the per-op baseline.
func TestPublicProgramAPI(t *testing.T) {
	eng, err := NewEngine(EngineConfig{DPUs: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	p := NewProgram("softmax")
	x := p.Input()
	m := p.ReduceMax(x)
	e := p.Func(Exp, p.Sub(x, p.Broadcast(m)))
	s := p.ReduceSum(e)
	p.Return(p.Mul(e, p.Div(p.Const(1), p.Broadcast(s))))

	cp, err := eng.CompileProgram(p, Config{Method: LLUT, Interpolated: true, SizeLog2: 12})
	if err != nil {
		t.Fatal(err)
	}

	const n = 500
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i%17)/2 - 4
	}
	out, st, err := eng.EvaluateProgram(cp, [][]float32{xs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d outputs, want %d", len(out), n)
	}
	var sum float64
	for i, y := range out {
		if math.IsNaN(float64(y)) || y < 0 || y > 1 {
			t.Fatalf("out[%d] = %g, not a softmax probability", i, y)
		}
		sum += float64(y)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("softmax outputs sum to %g, want ~1", sum)
	}
	if st.SavedBytes != st.PerOpBytes-st.FusedBytes || st.SavedBytes <= 0 {
		t.Errorf("byte accounting: fused=%d perop=%d saved=%d", st.FusedBytes, st.PerOpBytes, st.SavedBytes)
	}
	if st.SavedTransferCycles <= 0 {
		t.Errorf("SavedTransferCycles = %d, want > 0", st.SavedTransferCycles)
	}

	// The per-op baseline returns bit-identical outputs.
	ref, pst, err := eng.EvaluateProgramPerOp("", cp, [][]float32{xs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if math.Float32bits(out[i]) != math.Float32bits(ref[i]) {
			t.Fatalf("out[%d]: fused %x != per-op %x", i, math.Float32bits(out[i]), math.Float32bits(ref[i]))
		}
	}
	if pst.MovedBytes != st.PerOpBytes {
		t.Errorf("per-op moved %d bytes, model says %d", pst.MovedBytes, st.PerOpBytes)
	}

	// Compile rejects a Config that carries its own PIM system.
	if _, err := eng.CompileProgram(p, Config{PIM: pimsim.NewDPU(0, pimsim.Default(), 1)}); err == nil {
		t.Error("CompileProgram accepted a Config with PIM set")
	}
}
