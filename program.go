package transpimlib

import (
	"fmt"

	"transpimlib/internal/engine"
	"transpimlib/internal/fusion"
)

// Program is the fused operator-graph builder: declare vector and
// scalar inputs, chain transcendental Func nodes, elementwise
// arithmetic, reductions and broadcasts, terminate with Return, then
// compile with Engine.CompileProgram. A compiled program evaluates
// end-to-end on the PIM cores — intermediate vectors stay in MRAM/WRAM
// and never cross the host boundary between steps, unlike per-op
// evaluation which pays a full host↔PIM round trip per node.
//
// A fused softmax:
//
//	p := transpimlib.NewProgram("softmax")
//	x := p.Input()
//	m := p.ReduceMax(x)
//	e := p.Func(transpimlib.Exp, p.Sub(x, p.Broadcast(m)))
//	s := p.ReduceSum(e)
//	p.Return(p.Mul(e, p.Div(p.Const(1), p.Broadcast(s))))
type Program = fusion.Program

// ProgramValue is an opaque handle to one node of a Program.
type ProgramValue = fusion.Value

// CompiledProgram is a validated, phase-split fused program ready for
// Engine.EvaluateProgram. Compile once, evaluate many times; safe for
// concurrent use.
type CompiledProgram = fusion.Compiled

// ProgramStats is the cost report of one fused evaluation: request
// costs plus the fused-vs-per-op byte model (moved, baseline, saved
// bytes and the saved transfer cycles).
type ProgramStats = engine.ProgramStats

// PerOpStats aggregates a per-op baseline evaluation — one engine
// round trip per device node of the program.
type PerOpStats = engine.PerOpStats

// NewProgram starts an empty fused program. The name labels its ledger
// rows ("fused:<name>"), traces, and benchmark tables.
func NewProgram(name string) *Program { return fusion.NewProgram(name) }

// CompileProgram validates and compiles a program against this
// engine's cost model. Every Func node evaluates under the method
// configuration in spec (spec.PIM must be nil: the engine owns its own
// cores).
func (e *Engine) CompileProgram(p *Program, spec Config) (*CompiledProgram, error) {
	if spec.PIM != nil {
		return nil, fmt.Errorf("transpimlib: EngineConfig owns its PIM system; Config.PIM must be nil")
	}
	return e.e.CompileProgram(p, spec.params())
}

// EvaluateProgram evaluates a compiled fused program: inputs binds the
// program's vector inputs positionally (equal lengths), scalars its
// runtime scalar inputs. Returns the result vector (or a single
// element for a scalar-returning program) and the evaluation's cost
// report. Safe for concurrent use.
func (e *Engine) EvaluateProgram(c *CompiledProgram, inputs [][]float32, scalars []float32) ([]float32, ProgramStats, error) {
	return e.e.EvaluateProgram(c, inputs, scalars)
}

// EvaluateProgramAs is EvaluateProgram with a tenant tag for ledger
// attribution.
func (e *Engine) EvaluateProgramAs(tenant string, c *CompiledProgram, inputs [][]float32, scalars []float32) ([]float32, ProgramStats, error) {
	return e.e.EvaluateProgramTenant(tenant, c, inputs, scalars)
}

// EvaluateProgramPerOp evaluates the same program through the per-op
// baseline — every transcendental, elementwise and reduction node as
// its own engine round trip — with bit-identical outputs to
// EvaluateProgram. It exists for differential testing and for
// measuring what fusion saves.
func (e *Engine) EvaluateProgramPerOp(tenant string, c *CompiledProgram, inputs [][]float32, scalars []float32) ([]float32, PerOpStats, error) {
	return e.e.EvaluateProgramPerOp(tenant, c, inputs, scalars)
}