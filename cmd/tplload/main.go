// Command tplload is an open-loop load generator for the cluster
// serving layer: arrivals fire on a Poisson or bursty schedule
// regardless of completions (so queueing delay shows up as latency,
// not as a lower offered rate), against a transpimlib.Cluster of N
// engine replicas. A warmup phase brings caches and token buckets to
// steady state; the measurement phase then reports p50/p95/p99
// latency, goodput vs. shed rate, and per-replica utilization, as
// human tables and optionally a JSON report.
//
// With -verify every served request's outputs are compared bit-for-bit
// against goldens precomputed on a clean reference engine — valid
// because outputs are placement-independent by the engine differential
// contract — so replica failover and host-mirror degradation can be
// exercised (-fail-replica) while proving zero incorrect results.
// -max-shed bounds the measured shed fraction for CI.
//
// Exit codes: 0 success; 1 incorrect results, request errors, or a
// violated -max-shed bound; 2 bad usage.
//
// Usage:
//
//	tplload [-replicas 4] [-replication 2] [-dpus 8] [-shards 2]
//	        [-rate 2000] [-arrivals poisson|bursty] [-burst-factor 8]
//	        [-burst-period 100ms] [-warmup 500ms] [-duration 2s]
//	        [-elems 256] [-tenants 4] [-quota 0] [-max-queue 0]
//	        [-fail-replica -1] [-fail-plan "seed=7,dpufail=1"]
//	        [-verify] [-max-shed 1] [-seed 1] [-json report.json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"text/tabwriter"
	"time"

	"transpimlib"
	"transpimlib/internal/stats"
)

type job struct {
	name string
	fn   transpimlib.Function
	cfg  transpimlib.Config
}

func workloadMix() []job {
	return []job{
		{"sigmoid/L-LUT-i", transpimlib.Sigmoid,
			transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true, SizeLog2: 12}},
		{"gelu/DL-LUT-i", transpimlib.GELU,
			transpimlib.Config{Method: transpimlib.DLLUT, Interpolated: true, SizeLog2: 12}},
		{"exp/fxL-LUT-i", transpimlib.Exp,
			transpimlib.Config{Method: transpimlib.LLUTFixed, Interpolated: true, SizeLog2: 12}},
	}
}

// inputPools are the fixed request payloads: -verify compares served
// bits against goldens computed once per (job, pool) pair, so requests
// draw from a small pool instead of fresh random inputs.
const inputPools = 8

// report is the JSON output document.
type report struct {
	Config struct {
		Replicas    int     `json:"replicas"`
		Replication int     `json:"replication"`
		Rate        float64 `json:"rate_rps"`
		Arrivals    string  `json:"arrivals"`
		Elems       int     `json:"elems"`
		Tenants     int     `json:"tenants"`
		FailReplica int     `json:"fail_replica"`
	} `json:"config"`
	Offered   uint64  `json:"offered_requests"`
	Served    uint64  `json:"served_requests"`
	Shed      uint64  `json:"shed_requests"`
	Errors    uint64  `json:"error_requests"`
	ShedRate  float64 `json:"shed_rate"`
	GoodputME float64 `json:"goodput_melem_per_s"`
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Mismatches uint64          `json:"bit_mismatches"`
	Failovers  uint64          `json:"failovers"`
	Degraded   uint64          `json:"degraded"`
	Replicas   []replicaReport `json:"replicas_detail"`
}

type replicaReport struct {
	Replica     int     `json:"replica"`
	Routed      uint64  `json:"routed"`
	Share       float64 `json:"share"`
	Elements    uint64  `json:"elements"`
	Degraded    uint64  `json:"degraded_batches"`
	Quarantined bool    `json:"quarantined"`
}

func main() {
	replicas := flag.Int("replicas", 4, "engine replicas")
	replication := flag.Int("replication", 2, "candidate-set size K per key")
	dpus := flag.Int("dpus", 8, "simulated PIM cores per replica")
	shards := flag.Int("shards", 2, "pipeline shards per replica")
	rate := flag.Float64("rate", 2000, "mean offered load, requests/sec (open loop)")
	arrivals := flag.String("arrivals", "poisson", "arrival process: poisson or bursty")
	burstFactor := flag.Float64("burst-factor", 8, "bursty: on-phase rate multiplier")
	burstPeriod := flag.Duration("burst-period", 100*time.Millisecond, "bursty: on+off cycle length")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "warmup phase (excluded from the report)")
	duration := flag.Duration("duration", 2*time.Second, "measurement phase")
	elems := flag.Int("elems", 256, "elements per request")
	tenants := flag.Int("tenants", 4, "distinct tenant tags")
	quota := flag.Float64("quota", 0, "per-tenant token-bucket rate, elements/sec (0 disables quotas)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-tenant bucket capacity (0: one second of -quota)")
	maxQueue := flag.Int("max-queue", 0, "backlog bound per replica for queue shedding (0 disables)")
	failReplica := flag.Int("fail-replica", -1, "inject -fail-plan into this replica index")
	failPlan := flag.String("fail-plan", "seed=7,dpufail=1", "fault plan for -fail-replica")
	verify := flag.Bool("verify", false, "bit-compare every served output against a clean reference engine")
	maxShed := flag.Float64("max-shed", 1, "fail (exit 1) when the measured shed fraction exceeds this")
	seed := flag.Int64("seed", 1, "RNG seed for inputs and arrivals")
	jsonOut := flag.String("json", "", "write the JSON report to this file ('-' for stdout)")
	flag.Parse()

	if *arrivals != "poisson" && *arrivals != "bursty" {
		fmt.Fprintf(os.Stderr, "tplload: unknown -arrivals %q (want poisson or bursty)\n", *arrivals)
		os.Exit(2)
	}
	if *replicas < 1 || *rate <= 0 || *elems < 1 || *tenants < 1 {
		fmt.Fprintln(os.Stderr, "tplload: -replicas, -rate, -elems and -tenants must be positive")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ccfg := transpimlib.ClusterConfig{
		Replicas:    *replicas,
		Replication: *replication,
		Engine:      transpimlib.EngineConfig{DPUs: *dpus, Shards: *shards},
		Seed:        uint64(*seed),
		MaxQueue:    *maxQueue,
	}
	if *failReplica >= 0 {
		ccfg.ReplicaFaults = map[int]string{*failReplica: *failPlan}
	}
	if *quota > 0 {
		q := transpimlib.TenantQuota{Rate: *quota, Burst: *quotaBurst}
		ccfg.DefaultQuota = &q
	}
	cl, err := transpimlib.NewCluster(ccfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplload:", err)
		os.Exit(1)
	}
	defer cl.Close()

	// Fixed input pools and, under -verify, their goldens from a clean
	// single-engine reference: outputs are placement-independent, so
	// one golden per (job, pool) covers every replica.
	jobs := workloadMix()
	pools := make([][][]float32, len(jobs))
	goldens := make([][][]float32, len(jobs))
	for j := range jobs {
		pools[j] = make([][]float32, inputPools)
		goldens[j] = make([][]float32, inputPools)
		for p := 0; p < inputPools; p++ {
			pools[j][p] = stats.RandomInputs(-2, 2, *elems, uint64(*seed)+uint64(j*inputPools+p+1))
		}
	}
	if *verify {
		ref, err := transpimlib.NewEngine(transpimlib.EngineConfig{DPUs: *dpus, Shards: *shards})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tplload: reference engine:", err)
			os.Exit(1)
		}
		for j, jb := range jobs {
			for p := 0; p < inputPools; p++ {
				ys, _, err := ref.EvaluateBatch(jb.fn, jb.cfg, pools[j][p])
				if err != nil {
					fmt.Fprintln(os.Stderr, "tplload: golden:", err)
					os.Exit(1)
				}
				goldens[j][p] = ys
			}
		}
		ref.Close()
	}

	// Open-loop generator: a ticker goroutine draws inter-arrival gaps
	// from the chosen process and fires each request on its own
	// goroutine, never waiting for completions.
	var (
		wg         sync.WaitGroup
		offered    atomic.Uint64
		served     atomic.Uint64
		shedN      atomic.Uint64
		errN       atomic.Uint64
		mismatches atomic.Uint64
		latMu      sync.Mutex
		lats       []time.Duration
	)
	measuring := atomic.Bool{}
	rng := rand.New(rand.NewSource(*seed))
	gap := func(now time.Duration) time.Duration {
		r := *rate
		if *arrivals == "bursty" {
			// Square-wave modulation: the first half of each period
			// runs at burst-factor × the off-phase rate, preserving
			// the configured mean.
			on := now%*burstPeriod < *burstPeriod/2
			base := 2 * r / (*burstFactor + 1)
			if on {
				r = base * *burstFactor
			} else {
				r = base
			}
		}
		return time.Duration(rng.ExpFloat64() / r * float64(time.Second))
	}

	fire := func(i uint64, measured bool) {
		defer wg.Done()
		j := int(i) % len(jobs)
		pool := int(i/3) % inputPools
		tenant := fmt.Sprintf("tenant-%d", int(i)%*tenants)
		start := time.Now()
		ys, _, err := cl.EvaluateBatchAs(tenant, jobs[j].fn, jobs[j].cfg, pools[j][pool])
		if !measured {
			return
		}
		switch {
		case err == nil:
			served.Add(1)
			if *verify {
				for k, y := range ys {
					if math.Float32bits(y) != math.Float32bits(goldens[j][pool][k]) {
						mismatches.Add(1)
						break
					}
				}
			}
			lat := time.Since(start)
			latMu.Lock()
			lats = append(lats, lat)
			latMu.Unlock()
		case errors.Is(err, transpimlib.ErrOverloaded):
			shedN.Add(1)
		default:
			errN.Add(1)
			fmt.Fprintf(os.Stderr, "tplload: request error: %v\n", err)
		}
	}

	begin := time.Now()
	deadline := begin.Add(*warmup + *duration)
	var i uint64
	for time.Now().Before(deadline) && ctx.Err() == nil {
		now := time.Since(begin)
		if !measuring.Load() && now >= *warmup {
			measuring.Store(true)
		}
		m := measuring.Load()
		if m {
			offered.Add(1)
		}
		wg.Add(1)
		go fire(i, m)
		i++
		time.Sleep(gap(now))
	}
	wg.Wait()
	measured := *duration
	if ctx.Err() != nil {
		measured = time.Since(begin) - *warmup
		if measured < 0 {
			measured = time.Millisecond
		}
	}

	// Report.
	var rep report
	rep.Config.Replicas = *replicas
	rep.Config.Replication = *replication
	rep.Config.Rate = *rate
	rep.Config.Arrivals = *arrivals
	rep.Config.Elems = *elems
	rep.Config.Tenants = *tenants
	rep.Config.FailReplica = *failReplica
	rep.Offered = offered.Load()
	rep.Served = served.Load()
	rep.Shed = shedN.Load()
	rep.Errors = errN.Load()
	if rep.Offered > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Offered)
	}
	rep.GoodputME = float64(rep.Served) * float64(*elems) / measured.Seconds() / 1e6
	rep.Mismatches = mismatches.Load()

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	ms := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p*float64(len(lats))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max =
		ms(0.50), ms(0.95), ms(0.99), ms(1)

	cs := cl.Stats()
	rep.Failovers = cs.Failovers
	rep.Degraded = cs.Degraded
	rstats := cl.ReplicaStats()
	health := cl.Health()
	var routedTotal uint64
	for _, n := range cs.Routed {
		routedTotal += n
	}
	for r := 0; r < *replicas; r++ {
		rr := replicaReport{
			Replica:     r,
			Routed:      cs.Routed[r],
			Elements:    rstats[r].Elements,
			Degraded:    rstats[r].DegradedBatches,
			Quarantined: health[r].Quarantined,
		}
		if routedTotal > 0 {
			rr.Share = float64(cs.Routed[r]) / float64(routedTotal)
		}
		rep.Replicas = append(rep.Replicas, rr)
	}

	// Human tables. With -json - the JSON report owns stdout, so the
	// tables move to stderr to keep the stream machine-parseable.
	tableDst := io.Writer(os.Stdout)
	if *jsonOut == "-" {
		tableDst = os.Stderr
	}
	w := tabwriter.NewWriter(tableDst, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "offered\tserved\tshed\tshed%%\terrors\tgoodput(Melem/s)\n")
	fmt.Fprintf(w, "%d\t%d\t%d\t%.1f\t%d\t%.2f\n",
		rep.Offered, rep.Served, rep.Shed, rep.ShedRate*100, rep.Errors, rep.GoodputME)
	fmt.Fprintf(w, "\nlatency\tp50\tp95\tp99\tmax\n")
	fmt.Fprintf(w, "(ms)\t%.3f\t%.3f\t%.3f\t%.3f\n",
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max)
	fmt.Fprintf(w, "\nreplica\trouted\tshare%%\telements\tdegraded\tquarantined\n")
	for _, rr := range rep.Replicas {
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%d\t%d\t%v\n",
			rr.Replica, rr.Routed, rr.Share*100, rr.Elements, rr.Degraded, rr.Quarantined)
	}
	if cs.Failovers > 0 || cs.Degraded > 0 || cs.QuarantinedReplicas > 0 {
		fmt.Fprintf(w, "\nfailovers\tdegraded\tquarantined_replicas\n")
		fmt.Fprintf(w, "%d\t%d\t%d\n", cs.Failovers, cs.Degraded, cs.QuarantinedReplicas)
	}
	if *verify {
		fmt.Fprintf(w, "\nbit_mismatches\t%d\n", rep.Mismatches)
	}
	w.Flush()

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tplload:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tplload:", err)
			os.Exit(1)
		}
	}

	switch {
	case rep.Mismatches > 0:
		fmt.Fprintf(os.Stderr, "tplload: FAIL: %d served requests returned incorrect bits\n", rep.Mismatches)
		os.Exit(1)
	case rep.Errors > 0:
		fmt.Fprintf(os.Stderr, "tplload: FAIL: %d requests errored\n", rep.Errors)
		os.Exit(1)
	case rep.ShedRate > *maxShed:
		fmt.Fprintf(os.Stderr, "tplload: FAIL: shed rate %.3f exceeds -max-shed %.3f\n", rep.ShedRate, *maxShed)
		os.Exit(1)
	}
}
