// Command tplprof is the modeled-cycle profiler's CLI: it fetches
// /debug/profile and /debug/heatmap from a running tplserve (or any
// transpimlib engine/cluster with EngineConfig.Profiler on), renders
// top-N hotspot tables and per-DPU heatmaps, writes flamegraph and
// pprof artifacts, and diffs two profile JSON documents to localize
// cycle regressions frame by frame.
//
// Modes (exactly one):
//
//	tplprof -url http://localhost:9090 [-seconds 5] [-top 20]
//	        [-folded out.folded] [-pprof out.pb.gz] [-json out.json]
//	        [-heatmap]
//	    Fetch a profile (cumulative, or the next N seconds with
//	    -seconds), print the hotspot table, and optionally write the
//	    folded-stack / pprof / raw JSON artifacts. -heatmap fetches
//	    and renders the per-DPU utilization heatmap instead.
//
//	tplprof -bench [-n 4096] [-out profile.json]
//	    Run the deterministic offline benchmark workload (the tplbench
//	    engine snapshot mix plus a fused softmax program) under a
//	    profiling engine and write the resulting profile. Modeled
//	    cycles are machine-independent, so the output is byte-level
//	    reproducible and can be committed as a CI baseline.
//
//	tplprof -diff [-gate 0.10] [-top 20] old.json new.json
//	    Roll both profiles up to (function, method, class), print the
//	    changed frames sorted by |Δ wall cycles|, and exit 1 when any
//	    frame's wall cycles grew more than the gate fraction (new
//	    frames count as infinite growth). Two identical profiles
//	    report zero deltas and exit 0 — the CI cycle-regression gate.
//
// Exit codes: 0 success; 1 gate failure or workload error; 2 bad
// usage or unreachable server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/fusion"
	"transpimlib/internal/profiler"
	"transpimlib/internal/stats"
)

var (
	flagURL     = flag.String("url", "", "base URL of a profiling server (e.g. http://localhost:9090)")
	flagSeconds = flag.Float64("seconds", 0, "profile the next N seconds instead of the cumulative profile")
	flagTop     = flag.Int("top", 20, "rows in the hotspot / diff tables")
	flagFolded  = flag.String("folded", "", "write folded flamegraph stacks to this file")
	flagPprof   = flag.String("pprof", "", "write a gzipped pprof profile.proto to this file")
	flagJSON    = flag.String("json", "", "write the raw profile JSON to this file")
	flagHeatmap = flag.Bool("heatmap", false, "fetch and render /debug/heatmap instead of the profile")
	flagBench   = flag.Bool("bench", false, "run the deterministic offline benchmark workload")
	flagN       = flag.Int("n", 4096, "elements per benchmark request (with -bench)")
	flagOut     = flag.String("out", "", "write the -bench profile JSON to this file (default stdout)")
	flagDiff    = flag.Bool("diff", false, "diff two profile JSON files: tplprof -diff [-gate 0.10] old.json new.json")
	flagGate    = flag.Float64("gate", 0, "with -diff: exit 1 when any (function, method, class) frame's wall cycles grew more than this fraction (0 disables)")
)

func main() {
	flag.Parse()
	switch {
	case *flagDiff:
		if flag.NArg() != 2 {
			fatalUsage("-diff needs exactly two arguments: old.json new.json")
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1)))
	case *flagBench:
		os.Exit(runBench())
	case *flagURL != "":
		os.Exit(runFetch())
	default:
		fatalUsage("pick a mode: -url, -bench, or -diff (see -help)")
	}
}

func fatalUsage(msg string) {
	fmt.Fprintln(os.Stderr, "tplprof:", msg)
	os.Exit(2)
}

// --- fetch mode ---

func fetch(path string) ([]byte, error) {
	url := strings.TrimRight(*flagURL, "/") + path
	client := &http.Client{Timeout: time.Duration(*flagSeconds)*time.Second + 30*time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func runFetch() int {
	if *flagHeatmap {
		body, err := fetch("/debug/heatmap")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tplprof:", err)
			return 2
		}
		var hm struct {
			Sources []struct {
				Name string `json:"name"`
				profiler.Heatmap
			} `json:"sources"`
		}
		if err := json.Unmarshal(body, &hm); err != nil {
			fmt.Fprintln(os.Stderr, "tplprof: bad heatmap document:", err)
			return 2
		}
		for _, s := range hm.Sources {
			renderHeatmap(os.Stdout, s.Name, s.Heatmap)
		}
		if len(hm.Sources) == 0 {
			fmt.Println("no heatmap sources (is the server profiling?)")
		}
		return 0
	}

	query := ""
	if *flagSeconds > 0 {
		query = fmt.Sprintf("?seconds=%g", *flagSeconds)
		fmt.Fprintf(os.Stderr, "profiling %s for %gs...\n", *flagURL, *flagSeconds)
	}
	body, err := fetch("/debug/profile" + query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplprof:", err)
		return 2
	}
	var p profiler.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		fmt.Fprintln(os.Stderr, "tplprof: bad profile document:", err)
		return 2
	}
	renderTop(os.Stdout, p, *flagTop)
	if err := writeArtifacts(p, body); err != nil {
		fmt.Fprintln(os.Stderr, "tplprof:", err)
		return 1
	}
	return 0
}

// writeArtifacts writes the requested output files from the profile
// (the raw JSON bytes are reused verbatim for -json).
func writeArtifacts(p profiler.Profile, raw []byte) error {
	if *flagJSON != "" {
		if err := os.WriteFile(*flagJSON, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *flagJSON)
	}
	if *flagFolded != "" {
		f, err := os.Create(*flagFolded)
		if err != nil {
			return err
		}
		if err := p.WriteFolded(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (feed to flamegraph.pl / speedscope)\n", *flagFolded)
	}
	if *flagPprof != "" {
		f, err := os.Create(*flagPprof)
		if err != nil {
			return err
		}
		if err := p.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (open with `go tool pprof`)\n", *flagPprof)
	}
	return nil
}

// renderTop prints the hotspot table: the profile's n largest frames
// by attributed wall cycles, with their share of the total.
func renderTop(w io.Writer, p profiler.Profile, n int) {
	fmt.Fprintf(w, "launches %d   wall %d cycles   issue %d cycles   ops %d\n",
		p.Launches, p.TotalWall, p.TotalCycles, p.TotalOps)
	if len(p.Frames) == 0 {
		fmt.Fprintln(w, "no frames recorded")
		return
	}
	fmt.Fprintf(w, "%-10s %-10s %-14s %-8s %-6s %14s %7s %14s\n",
		"TENANT", "FUNCTION", "METHOD", "STAGE", "CLASS", "WALL", "%", "ISSUE")
	for _, f := range p.Top(n) {
		share := 0.0
		if p.TotalWall > 0 {
			share = 100 * float64(f.WallCycles) / float64(p.TotalWall)
		}
		fmt.Fprintf(w, "%-10s %-10s %-14s %-8s %-6s %14d %6.2f%% %14d\n",
			orDash(f.Tenant), f.Function, f.Method, f.Stage, f.Class,
			f.WallCycles, share, f.Cycles)
	}
	if len(p.Frames) > n {
		fmt.Fprintf(w, "... %d more frames\n", len(p.Frames)-n)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// renderHeatmap prints one source's per-DPU utilization: a bar per
// core split into issue / DMA-excess / idle shares, plus the window
// count retained for time-series consumers.
func renderHeatmap(w io.Writer, name string, h profiler.Heatmap) {
	fmt.Fprintf(w, "== %s: %d launches, %d retained windows ==\n", name, h.Launches, len(h.Windows))
	const width = 40
	for _, d := range h.DPUs {
		bar := make([]byte, width)
		iw := int(d.IssueShare * width)
		dw := int(d.DMAShare * width)
		for i := range bar {
			switch {
			case i < iw:
				bar[i] = '#'
			case i < iw+dw:
				bar[i] = '='
			default:
				bar[i] = '.'
			}
		}
		fmt.Fprintf(w, "  dpu %3d [%s] issue %5.1f%%  dma %5.1f%%  idle %5.1f%%  (%d launches)\n",
			d.DPU, bar, 100*d.IssueShare, 100*d.DMAShare, 100*d.IdleShare, d.Launches)
	}
}

// --- bench mode ---

// benchProfile runs the deterministic offline workload — the tplbench
// engine-snapshot mix (sigmoid L-LUTi, GELU DL-LUTi, exp fixed
// L-LUTi over two rounds) plus a fused softmax program — on a
// profiling engine and returns its cumulative profile. Everything
// that reaches the profile is modeled, so two runs on any machines
// produce identical frames.
func benchProfile(n int) (profiler.Profile, error) {
	eng, err := engine.New(engine.Config{
		DPUs: 8, Shards: 2,
		Profiler: profiler.Config{Enabled: true},
	})
	if err != nil {
		return profiler.Profile{}, err
	}
	defer eng.Close()

	specs := []struct {
		fn core.Function
		p  core.Params
	}{
		{core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}},
		{core.GELU, core.Params{Method: core.DLLUT, Interp: true, SizeLog2: 12}},
		{core.Exp, core.Params{Method: core.LLUTFixed, Interp: true, SizeLog2: 12}},
	}
	xs := stats.RandomInputs(-2, 2, n, 0x7e1e)
	for round := 0; round < 2; round++ {
		for _, sp := range specs {
			if _, _, err := eng.EvaluateBatchTenant("bench", sp.fn, sp.p, xs); err != nil {
				return profiler.Profile{}, err
			}
		}
	}

	// One fused program so phase-labeled frames are part of the
	// baseline too.
	sm := fusion.NewProgram("softmax")
	x := sm.Input()
	m := sm.ReduceMax(x)
	e := sm.Func(core.Exp, sm.Sub(x, sm.Broadcast(m)))
	s := sm.ReduceSum(e)
	sm.Return(sm.Mul(e, sm.Div(sm.Const(1), sm.Broadcast(s))))
	prog, err := eng.CompileProgram(sm, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12})
	if err != nil {
		return profiler.Profile{}, err
	}
	sx := stats.RandomInputs(-7.5, 7.5, n, 11)
	if _, _, err := eng.EvaluateProgramTenant("bench", prog, [][]float32{sx}, nil); err != nil {
		return profiler.Profile{}, err
	}

	p, _ := eng.ProfileSnapshot()
	// Pin the timestamps: the profile is committed as a baseline and
	// diffed structurally, so wall-clock noise has no business in it.
	p.StartUnixNano, p.EndUnixNano = 0, 0
	return p, nil
}

func runBench() int {
	p, err := benchProfile(*flagN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplprof:", err)
		return 1
	}
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplprof:", err)
		return 1
	}
	out = append(out, '\n')
	if *flagOut == "" {
		os.Stdout.Write(out)
		return 0
	}
	if err := os.WriteFile(*flagOut, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tplprof:", err)
		return 1
	}
	renderTop(os.Stderr, p, *flagTop)
	fmt.Fprintf(os.Stderr, "wrote %s\n", *flagOut)
	return 0
}

// --- diff mode ---

func loadProfile(path string) (profiler.Profile, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return profiler.Profile{}, err
	}
	var p profiler.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		return profiler.Profile{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func runDiff(oldPath, newPath string) int {
	oldP, err := loadProfile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplprof:", err)
		return 2
	}
	newP, err := loadProfile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplprof:", err)
		return 2
	}
	// The gate granularity: tenant and stage collapse, so a workload
	// re-labeling cannot masquerade as a regression (or hide one).
	deltas := profiler.Diff(profiler.Rollup(oldP), profiler.Rollup(newP))
	if len(deltas) == 0 {
		fmt.Printf("no cycle deltas between %s and %s\n", oldPath, newPath)
		return 0
	}

	fmt.Printf("%d changed (function, method, class) frames, by |Δ wall|:\n", len(deltas))
	fmt.Printf("%-10s %-14s %-6s %14s %14s %14s %9s\n",
		"FUNCTION", "METHOD", "CLASS", "OLD WALL", "NEW WALL", "Δ WALL", "GROWTH")
	shown := deltas
	if *flagTop >= 0 && len(shown) > *flagTop {
		shown = shown[:*flagTop]
	}
	for _, d := range shown {
		fmt.Printf("%-10s %-14s %-6s %14d %14d %+14d %9s\n",
			d.Function, d.Method, d.Class, d.OldWall, d.WallCycles, d.DeltaWall, growthLabel(d))
	}
	if len(deltas) > len(shown) {
		fmt.Printf("... %d more\n", len(deltas)-len(shown))
	}

	if *flagGate > 0 {
		var violations []profiler.FrameDelta
		for _, d := range deltas {
			if d.DeltaWall > 0 && d.Growth > *flagGate {
				violations = append(violations, d)
			}
		}
		if len(violations) > 0 {
			sort.Slice(violations, func(i, j int) bool { return violations[i].Growth > violations[j].Growth })
			fmt.Printf("\nGATE FAILED (+%.0f%% wall-cycle growth allowed):\n", *flagGate*100)
			for _, d := range violations {
				fmt.Printf("  %s/%s/%s: %d -> %d wall cycles (%s)\n",
					d.Function, d.Method, d.Class, d.OldWall, d.WallCycles, growthLabel(d))
			}
			return 1
		}
		fmt.Printf("\ngate passed: no frame grew more than %.0f%%\n", *flagGate*100)
	}
	return 0
}

// growthLabel renders a delta's relative growth; frames absent from
// the old profile read "new".
func growthLabel(d profiler.FrameDelta) string {
	if d.OldWall == 0 {
		if d.WallCycles > 0 {
			return "new"
		}
		return "gone"
	}
	return fmt.Sprintf("%+.1f%%", d.Growth*100)
}
