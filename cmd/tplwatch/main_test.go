package main

import (
	"strings"
	"testing"

	"transpimlib/internal/accwatch"
)

func TestSparklineAndCoverSpan(t *testing.T) {
	cover := []accwatch.CoverBucket{
		{Label: "2^-2", Count: 1},
		{Label: "2^-1", Count: 50},
		{Label: "2^0", Count: 100},
	}
	s := sparkline(cover)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length %d, want 3 (%q)", len([]rune(s)), s)
	}
	r := []rune(s)
	if r[0] >= r[1] || r[1] >= r[2] {
		t.Fatalf("sparkline not monotone for increasing counts: %q", s)
	}
	if got := coverSpan(cover); got != "2^-2..2^0" {
		t.Fatalf("coverSpan = %q", got)
	}
	if sparkline(nil) != "" || coverSpan(nil) != "-" {
		t.Fatal("empty coverage not handled")
	}
}

func TestRenderSmoke(t *testing.T) {
	snap := accwatch.Snapshot{
		SampleRate: 0.01, Window: 4096, Samples: 100,
		Series: []accwatch.SeriesSnapshot{{
			Key:     accwatch.Key{Function: "sin", Method: "cordic", Tenant: "t"},
			Samples: 100,
			Coverage: []accwatch.CoverBucket{
				{Label: "2^0", Count: 60}, {Label: "2^1", Count: 40},
			},
			WorstAbs: &accwatch.Exemplar{Input: 1, Output: 0.84, Ref: 0.8414},
		}},
	}
	var sb strings.Builder
	render(&sb, snap, map[string]float64{"engine_requests_total": 5})
	out := sb.String()
	for _, want := range []string{"cordic", "requests=5", "worst sin/cordic/t"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output lacks %q:\n%s", want, out)
		}
	}
}
