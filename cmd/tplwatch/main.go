// Command tplwatch is a terminal dashboard for a serving engine's
// accuracy observability: it polls a tplserve instance's
// /debug/accuracy and /metrics endpoints and renders the
// per-(function, method, tenant) shadow-sampling statistics — sample
// counts, MAE, worst absolute/ULP errors, rolling-window state, SLO
// breach and drift counters, and an input-domain coverage sparkline
// per series (the paper's table-density argument, live: traffic
// leaving the dense LUT region shifts the sparkline before the error
// moves).
//
// Usage:
//
//	tplwatch [-url http://localhost:9090] [-interval 1s] [-once]
//
// -once polls a single time and prints without clearing the screen
// (useful in scripts and CI logs); otherwise the dashboard refreshes
// every -interval until interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"transpimlib/internal/accwatch"
	"transpimlib/internal/telemetry/promparse"
)

func main() {
	url := flag.String("url", "http://localhost:9090", "base URL of a tplserve -listen endpoint")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "poll once, print, and exit")
	flag.Parse()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	for {
		snap, err := fetchSnapshot(*url + "/debug/accuracy")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tplwatch:", err)
			os.Exit(1)
		}
		metrics, err := fetchMetrics(*url + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tplwatch:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, snap, metrics)
		if *once {
			return
		}
		select {
		case <-sig:
			return
		case <-time.After(*interval):
		}
	}
}

func fetchSnapshot(url string) (accwatch.Snapshot, error) {
	var snap accwatch.Snapshot
	resp, err := http.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return snap, fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

func fetchMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	// The shared exposition parser (internal/telemetry/promparse) is
	// the client-side half of our own registry's text format.
	return promparse.Parse(string(data))
}

// sparkline renders coverage buckets as a fixed-height bar string,
// scaled to the largest bucket.
func sparkline(cover []accwatch.CoverBucket) string {
	if len(cover) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var max uint64
	for _, c := range cover {
		if c.Count > max {
			max = c.Count
		}
	}
	var sb strings.Builder
	for _, c := range cover {
		g := int(uint64(len(glyphs)-1) * c.Count / max)
		sb.WriteRune(glyphs[g])
	}
	return sb.String()
}

// coverSpan summarizes the occupied coverage range ("2^-3..2^2").
func coverSpan(cover []accwatch.CoverBucket) string {
	if len(cover) == 0 {
		return "-"
	}
	if len(cover) == 1 {
		return cover[0].Label
	}
	return cover[0].Label + ".." + cover[len(cover)-1].Label
}

func render(w io.Writer, snap accwatch.Snapshot, metrics map[string]float64) {
	fmt.Fprintf(w, "accuracy watch  rate=%.3g  window=%d  samples=%d  breaches=%d  drift=%d  out-of-range=%d\n",
		snap.SampleRate, snap.Window, snap.Samples, snap.Breaches, snap.Drifts, snap.OutOfRange)
	if v, ok := metrics["engine_requests_total"]; ok {
		fmt.Fprintf(w, "engine          requests=%.0f  elements=%.0f  degraded=%.0f\n",
			v, metrics["engine_elements_total"], metrics["engine_degraded_batches_total"])
	}
	fmt.Fprintln(w)
	if len(snap.Series) == 0 {
		fmt.Fprintln(w, "no series yet (no sampled traffic)")
		return
	}

	fmt.Fprintf(w, "%-10s %-12s %-10s %9s %10s %10s %9s %4s %5s  %-14s %s\n",
		"FN", "METHOD", "TENANT", "SAMPLES", "MAE", "MAX-ABS", "MAX-ULP", "SLO✗", "DRIFT", "COVER", "")
	series := append([]accwatch.SeriesSnapshot(nil), snap.Series...)
	sort.SliceStable(series, func(i, j int) bool { // worst first
		return series[i].Cumulative.MeanAbs > series[j].Cumulative.MeanAbs
	})
	for _, s := range series {
		fmt.Fprintf(w, "%-10s %-12s %-10s %9d %10.3g %10.3g %9.3g %4d %5d  %-14s %s\n",
			s.Key.Function, s.Key.Method, s.Key.Tenant,
			s.Samples, s.Cumulative.MeanAbs, s.Cumulative.MaxAbs, s.Cumulative.MaxULP,
			s.Breaches, s.Drifts, coverSpan(s.Coverage), sparkline(s.Coverage))
	}

	for _, s := range series {
		if s.WorstAbs == nil {
			continue
		}
		e := s.WorstAbs
		fmt.Fprintf(w, "\nworst %s/%s/%s: f(%v)=%v want %.6g  abs=%.3g ulp=%.3g  (x=0x%08x shard=%d trace=%d)\n",
			s.Key.Function, s.Key.Method, s.Key.Tenant,
			e.Input, e.Output, e.Ref, e.AbsErr, e.ULP, e.InputBits, e.Shard, e.TraceID)
	}
}
