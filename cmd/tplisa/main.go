// Command tplisa runs the ISA-level cost-model validation and prints
// the comparison table: retired instruction counts of hand-written
// assembly routines on the internal/isa interpreter versus the cycle
// charges pimsim's cost model applies for the same operations
// (DESIGN.md §2, item 14; EXPERIMENTS.md "Cost-model validation").
package main

import (
	"fmt"
	"math"
	"os"

	"transpimlib/internal/fixed"
	"transpimlib/internal/isa"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
)

func main() {
	cm := pimsim.Default()
	fmt.Println("ISA-level cost-model validation")
	fmt.Println("(assembly on the internal/isa interpreter vs pimsim charges)")
	fmt.Println()
	fmt.Printf("%-44s %10s %10s %8s\n", "routine", "asm instrs", "charge", "ratio")

	row := func(name string, instrs uint64, charge int) {
		fmt.Printf("%-44s %10d %10d %7.2fx\n", name, instrs, charge, float64(instrs)/float64(charge))
	}

	wram := pimsim.NewMem("wram", pimsim.DefaultWRAMSize, 4)
	mram := pimsim.NewMem("mram", pimsim.DefaultMRAMSize, 8)
	m := isa.NewMachine(wram, mram, cm)

	runFrom := func(p *isa.Program, label string, setup func()) uint64 {
		m.Reset()
		setup()
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, label, 100000); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return m.IssueCycles()
	}

	// Software 32×32 multiply.
	pm := isa.MustAssemble(isa.Mul32Src)
	row("mul32 (8×8 mul_step products)",
		runFrom(pm, "mul32", func() { m.Regs[1], m.Regs[2] = 12345, -678 }),
		cm.IMul)

	// Software float multiply and add.
	pf := isa.MustAssemble(isa.FMul32Src)
	row("fmul32 (softfloat multiply)",
		runFrom(pf, "fmul32", func() {
			m.Regs[1] = int32(math.Float32bits(3.14159))
			m.Regs[2] = int32(math.Float32bits(2.71828))
		}),
		cm.FMul)
	pa := isa.MustAssemble(isa.FAdd32Src)
	row("fadd32 (softfloat add, cancellation path)",
		runFrom(pa, "fadd32", func() {
			m.Regs[1] = int32(math.Float32bits(3.14159))
			m.Regs[2] = int32(math.Float32bits(-2.71828))
		}),
		cm.FAdd)
	pd := isa.MustAssemble(isa.FDiv32Src)
	row("fdiv32 (restoring shift-subtract divide)",
		runFrom(pd, "fdiv32", func() {
			m.Regs[1] = int32(math.Float32bits(3.14159))
			m.Regs[2] = int32(math.Float32bits(2.71828))
		}),
		cm.FDiv)
	pl := isa.MustAssemble(isa.LdexpSrc)
	row("ldexp (exponent-field add)",
		runFrom(pl, "ldexp", func() {
			m.Regs[1] = int32(math.Float32bits(3.25))
			m.Regs[2] = 10
		}),
		cm.Ldexp)

	// Conversions.
	pq := isa.MustAssemble(isa.F2QSrc)
	row("f2q (float→Q3.28)",
		runFrom(pq, "f2q", func() { m.Regs[1] = int32(math.Float32bits(3.25)) }),
		cm.FToI)
	p2 := isa.MustAssemble(isa.Q2FSrc)
	row("q2f (Q3.28→float, CLZ normalize)",
		runFrom(p2, "q2f", func() { m.Regs[1] = int32(fixed.FromFloat64(3.25)) }),
		cm.IToF)

	// One 64-bit CORDIC iteration body.
	pc := isa.MustAssemble(isa.CordicStepSrc)
	row("cordic step (64-bit funnel shifts + carries)",
		runFrom(pc, "cordic_step", func() {
			m.Regs[1], m.Regs[2] = int32(1<<8), 0
			m.Regs[7] = 5
		}),
		2*cm.I64Shr+3*cm.I64Add+cm.I64Add)

	// The full fixed-point L-LUT sine pipeline, averaged over inputs.
	const n = 10
	tab, err := lut.BuildFixedLLUT(math.Sin, 0, 2*math.Pi, n, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dpu := pimsim.NewDPU(0, cm, 16)
	dev, err := tab.Load(dpu, pimsim.InWRAM)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog := isa.ValidationProgram()
	mach := isa.NewMachineForDPU(dpu)
	var asmTotal uint64
	samples := 0
	for x := 0.1; x < 2*math.Pi; x += 0.37 {
		mach.Reset()
		mach.Regs[1] = int32(math.Float32bits(float32(x)))
		mach.Regs[2] = 0
		mach.Regs[3] = int32(tab.P)
		mach.Regs[4] = int32(fixed.FracBits - n)
		mach.Regs[5] = int32(len(tab.Entries))
		if err := mach.RunFrom(prog, "sine_fixed", 100000); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		asmTotal += mach.IssueCycles()
		samples++
	}
	dpu.ResetCycles()
	ctx := dpu.NewCtx()
	for x := 0.1; x < 2*math.Pi; x += 0.37 {
		dev.EvalFloat(ctx, float32(x))
	}
	fmt.Printf("%-44s %10.1f %10.1f %7.2fx\n",
		"fixed L-LUT sine pipeline (per element)",
		float64(asmTotal)/float64(samples),
		float64(dpu.Cycles())/float64(samples),
		float64(asmTotal)/float64(dpu.Cycles()))

	// The interpolated float L-LUT sine (Key Takeaway 1's recommended
	// method) end to end.
	itab, err := lut.BuildLLUT(math.Sin, 0, 2*math.Pi, n, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dpu2 := pimsim.NewDPU(1, cm, 16)
	idev, err := itab.Load(dpu2, pimsim.InWRAM)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	iprog := isa.InterpValidationProgram()
	imach := isa.NewMachineForDPU(dpu2)
	var iasm uint64
	isamples := 0
	for x := 0.05; x < 2*math.Pi; x += 0.11 {
		imach.Reset()
		imach.Regs[1] = int32(math.Float32bits(float32(x)))
		imach.Regs[2] = 0
		imach.Regs[3] = n
		imach.Regs[4] = int32(len(itab.Entries))
		if err := imach.RunFrom(iprog, "sine_llut_i", 100000); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		iasm += imach.IssueCycles()
		isamples++
	}
	dpu2.ResetCycles()
	ictx := dpu2.NewCtx()
	for x := 0.05; x < 2*math.Pi; x += 0.11 {
		idev.Eval(ictx, float32(x))
	}
	fmt.Printf("%-44s %10.1f %10.1f %7.2fx\n",
		"interpolated L-LUT sine pipeline (KT1)",
		float64(iasm)/float64(isamples),
		float64(dpu2.Cycles())/float64(isamples),
		float64(iasm)/float64(dpu2.Cycles()))
	fmt.Println()
	fmt.Println("ratios near 1 mean the cost model charges what the ISA actually executes;")
	fmt.Println("softfloat ratios < 1 reflect truncating asm vs charged round-to-nearest.")
}
