// Command tplchaos is the reliability scenario runner: it drives a
// deterministic chaos experiment against the serving engine and
// verifies the two properties the fault subsystem guarantees.
//
// The same workload runs three times — once on a clean engine (the
// bit-exact reference), twice on fault-injected engines built from
// the same plan. The runner then checks that
//
//  1. every chaos-run output is bit-identical to the clean run
//     (recovery is lossless: retries, remaps, hedges and host-mirror
//     degradation all reproduce the exact device results), and
//  2. the two chaos runs produced identical fault-event logs
//     (injection is a pure function of the plan seed).
//
// Any wrong output or log divergence is a non-zero exit. With -out
// the canonical event log plus a scenario summary is written as a
// JSON artifact for CI retention.
//
// Usage:
//
//	tplchaos [-dpus 4] [-shards 1] [-requests 40] [-elems 512]
//	         [-seed 42] [-hedge 0] [-out events.json]
//	         [-faults "seed=42,dpufail=0.05,dpuslow=0.05x4,bitflip=0.02,tin=0.05,tout=0.05"]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	"transpimlib"
)

const defaultPlan = "seed=42,dpufail=0.05,dpuslow=0.05x4,bitflip=0.02,tin=0.05,tout=0.05"

type chaosJob struct {
	name string
	fn   transpimlib.Function
	cfg  transpimlib.Config
}

// workload mixes methods and placements: the MRAM-resident tables are
// what the bit-flip class corrupts (WRAM tables are out of its scope).
func workload() []chaosJob {
	return []chaosJob{
		{"sigmoid/L-LUT-i/mram", transpimlib.Sigmoid,
			transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true, SizeLog2: 12, Placement: transpimlib.InMRAM}},
		{"gelu/DL-LUT-i/wram", transpimlib.GELU,
			transpimlib.Config{Method: transpimlib.DLLUT, Interpolated: true, SizeLog2: 12}},
		{"exp/fxL-LUT-i/mram", transpimlib.Exp,
			transpimlib.Config{Method: transpimlib.LLUTFixed, Interpolated: true, SizeLog2: 12, Placement: transpimlib.InMRAM}},
	}
}

type runResult struct {
	outs     [][]float32
	degraded []bool
	stats    transpimlib.EngineStats
	events   []transpimlib.FaultEvent
	health   []transpimlib.LaneHealth
	wall     time.Duration
}

// runScenario replays the deterministic workload sequentially through
// a fresh engine. faults=="" builds the clean reference engine.
func runScenario(faults string, dpus, shards, requests, elems int, seed int64, hedge float64) (*runResult, error) {
	eng, err := transpimlib.NewEngine(transpimlib.EngineConfig{
		DPUs: dpus, Shards: shards, Faults: faults,
		Reliability: transpimlib.ReliabilityConfig{HedgeRatio: hedge},
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	jobs := workload()
	rng := rand.New(rand.NewSource(seed))
	res := &runResult{wall: 0}
	start := time.Now()
	for r := 0; r < requests; r++ {
		j := jobs[r%len(jobs)]
		xs := make([]float32, elems)
		for i := range xs {
			xs[i] = -2 + 4*rng.Float32()
		}
		ys, st, err := eng.EvaluateBatch(j.fn, j.cfg, xs)
		if err != nil {
			return nil, fmt.Errorf("request %d (%s): %w", r, j.name, err)
		}
		out := make([]float32, len(ys))
		copy(out, ys)
		res.outs = append(res.outs, out)
		res.degraded = append(res.degraded, st.Degraded)
	}
	res.wall = time.Since(start)
	res.stats = eng.Stats()
	res.events = eng.FaultEvents()
	res.health = eng.Health()
	return res, nil
}

// artifact is the JSON document -out writes: enough to re-run the
// scenario (plan + seeds + shape), the verdicts, the recovery-ladder
// counters, and the canonical event log.
type artifact struct {
	Plan        string                   `json:"plan"`
	DPUs        int                      `json:"dpus"`
	Shards      int                      `json:"shards"`
	Requests    int                      `json:"requests"`
	Elems       int                      `json:"elems"`
	InputSeed   int64                    `json:"input_seed"`
	AllCorrect  bool                     `json:"all_correct"`
	ReplayOK    bool                     `json:"replay_ok"`
	Degraded    int                      `json:"degraded_requests"`
	Stats       transpimlib.EngineStats  `json:"stats"`
	Health      []transpimlib.LaneHealth `json:"health"`
	FaultEvents []transpimlib.FaultEvent `json:"fault_events"`
}

func main() {
	dpus := flag.Int("dpus", 4, "simulated PIM cores")
	shards := flag.Int("shards", 1, "pipeline shards (keep 1 for reproducible event logs)")
	requests := flag.Int("requests", 40, "sequential requests to replay")
	elems := flag.Int("elems", 512, "elements per request")
	seed := flag.Int64("seed", 42, "input RNG seed")
	hedge := flag.Float64("hedge", 0, "hedged-launch ratio (0 disables hedging)")
	faults := flag.String("faults", defaultPlan, "fault-injection plan (faultsim syntax)")
	out := flag.String("out", "", "write the event log + scenario summary as JSON to this path")
	flag.Parse()

	if *faults == "" {
		fmt.Fprintln(os.Stderr, "tplchaos: -faults must be a non-empty plan")
		os.Exit(2)
	}

	fmt.Printf("tplchaos: %d cores / %d shards, %d requests × %d elems\n", *dpus, *shards, *requests, *elems)
	fmt.Printf("plan: %s\n", *faults)

	clean, err := runScenario("", *dpus, *shards, *requests, *elems, *seed, *hedge)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplchaos: clean run:", err)
		os.Exit(1)
	}
	chaos, err := runScenario(*faults, *dpus, *shards, *requests, *elems, *seed, *hedge)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplchaos: chaos run:", err)
		os.Exit(1)
	}
	replay, err := runScenario(*faults, *dpus, *shards, *requests, *elems, *seed, *hedge)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplchaos: replay run:", err)
		os.Exit(1)
	}

	wrong, degraded := 0, 0
	for r := range chaos.outs {
		if !reflect.DeepEqual(chaos.outs[r], clean.outs[r]) {
			wrong++
			if wrong <= 5 {
				fmt.Fprintf(os.Stderr, "tplchaos: request %d output diverges from clean run (degraded=%v)\n",
					r, chaos.degraded[r])
			}
		}
		if chaos.degraded[r] {
			degraded++
		}
	}
	replayOK := reflect.DeepEqual(chaos.events, replay.events)

	st := chaos.stats
	fmt.Printf("\nclean run:  %d requests in %v\n", *requests, clean.wall.Round(time.Microsecond))
	fmt.Printf("chaos run:  %d requests in %v, %d faults injected\n",
		*requests, chaos.wall.Round(time.Microsecond), st.FaultsInjected)
	fmt.Printf("recovery ladder: %d launch retries | %d transfer retries | %d timeouts | %d remaps | %d hedges | %d degraded batches\n",
		st.LaunchRetries, st.TransferRetries, st.LaunchTimeouts, st.Remaps, st.Hedges, st.DegradedBatches)
	fmt.Printf("table scrub: %d corruptions detected, %d repairs\n", st.TableCorruptions, st.TableRepairs)
	quar, prob := 0, 0
	for _, h := range chaos.health {
		if h.Quarantined {
			quar++
		}
		if h.Probation {
			prob++
		}
	}
	fmt.Printf("health: %d cores quarantined, %d on probation\n", quar, prob)
	fmt.Printf("verdict: %d/%d outputs bit-identical to clean (%d served degraded), replay %s\n",
		*requests-wrong, *requests, degraded, map[bool]string{true: "identical", false: "DIVERGED"}[replayOK])

	if *out != "" {
		doc := artifact{
			Plan: *faults, DPUs: *dpus, Shards: *shards, Requests: *requests,
			Elems: *elems, InputSeed: *seed,
			AllCorrect: wrong == 0, ReplayOK: replayOK, Degraded: degraded,
			Stats: st, Health: chaos.health, FaultEvents: chaos.events,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tplchaos:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tplchaos:", err)
			os.Exit(1)
		}
		fmt.Printf("event log: %s (%d events, %d bytes)\n", *out, len(chaos.events), len(buf))
	}

	if wrong > 0 || !replayOK {
		if wrong > 0 {
			fmt.Fprintf(os.Stderr, "tplchaos: FAIL — %d wrong outputs\n", wrong)
		}
		if !replayOK {
			fmt.Fprintf(os.Stderr, "tplchaos: FAIL — event log not reproducible (%d vs %d events)\n",
				len(chaos.events), len(replay.events))
		}
		os.Exit(1)
	}
	fmt.Println("tplchaos: PASS")
}
