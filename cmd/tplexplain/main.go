// Command tplexplain decomposes where a method's cycles go: it runs
// one (function, method) configuration through the simulator and
// prints the per-operation-class cycle breakdown — the quantitative
// form of the paper's "the number of floating-point multiplications
// determines the number of execution cycles" argument (§4.2.1).
//
// Usage:
//
//	tplexplain -fn sin -method l-lut -interp
//	tplexplain -fn exp -method cordic -iter 30
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

var (
	flagFn     = flag.String("fn", "sin", "function")
	flagMethod = flag.String("method", "l-lut", "method (cordic, cordic+lut, m-lut, l-lut, l-lut-fixed, d-lut, dl-lut, poly)")
	flagInterp = flag.Bool("interp", false, "interpolated LUT variant")
	flagSize   = flag.Int("size", 12, "LUT size knob")
	flagIter   = flag.Int("iter", 30, "CORDIC iterations")
	flagDeg    = flag.Int("deg", 9, "polynomial degree")
	flagMRAM   = flag.Bool("mram", false, "place tables in the DRAM bank instead of the scratchpad")
	flagWide   = flag.Bool("wide", false, "wide-range trig (prepends 2π reduction)")
	flagN      = flag.Int("n", 4096, "number of inputs")
)

func main() {
	flag.Parse()
	fn, err := core.ParseFunction(*flagFn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := core.ParseMethod(*flagMethod)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	place := pimsim.InWRAM
	if *flagMRAM {
		place = pimsim.InMRAM
	}
	p := core.Params{
		Method:     m,
		Interp:     *flagInterp,
		SizeLog2:   *flagSize,
		Iterations: *flagIter,
		Degree:     *flagDeg,
		Placement:  place,
		WideRange:  *flagWide,
	}

	dpu := pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
	op, err := core.Build(fn, p, dpu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dpu.ResetCycles()
	ctx := dpu.NewCtx()
	lo, hi := fn.Domain()
	inputs := stats.RandomInputs(lo, hi, *flagN, 0xE)
	ref := fn.Ref()
	var col stats.Collector
	for _, x := range inputs {
		col.Add(op.Eval(ctx, x), ref(float64(x)))
	}

	n := float64(len(inputs))
	c := dpu.Counters()
	total := float64(dpu.Cycles())

	fmt.Printf("%v via %s\n", fn, p.Label())
	fmt.Printf("accuracy:    %s\n", col.Result())
	fmt.Printf("memory:      %d bytes of tables\n", op.TableBytes())
	fmt.Printf("setup:       %.3g s (host gen %.3g s + transfer %.3g s)\n",
		op.SetupSeconds(), op.BuildSeconds(), op.TransferSeconds())
	fmt.Printf("execution:   %.1f cycles/element (%.2f µs/element at 350 MHz)\n\n",
		total/n, total/n/350)

	type row struct {
		class  pimsim.OpClass
		ops    float64
		cycles float64
	}
	var rows []row
	for cl := pimsim.OpClass(0); cl.String() != "op?"; cl++ {
		if c.Cycles[cl] == 0 {
			continue
		}
		rows = append(rows, row{cl, float64(c.Ops[cl]) / n, float64(c.Cycles[cl]) / n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles > rows[j].cycles })
	fmt.Printf("%-8s %12s %14s %8s\n", "class", "ops/elem", "cycles/elem", "share")
	for _, r := range rows {
		fmt.Printf("%-8s %12.2f %14.1f %7.1f%%\n",
			r.class, r.ops, r.cycles, 100*r.cycles/total*n)
	}
	if dma := float64(dpu.DMACycles()) / n; dma > 0 {
		fmt.Printf("\nDMA engine busy: %.1f cycles/elem (overlapped; bound only if > pipeline)\n", dma)
	}
}
