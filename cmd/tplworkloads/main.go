// Command tplworkloads regenerates Figure 9: execution time of
// Blackscholes (10M options), Sigmoid (30M elements) and Softmax (30M
// elements) on the PIM system (2545 cores × 16 PIM threads at
// 350 MHz) against single- and 32-thread CPU baselines.
//
// PIM variants: polynomial-approximation baseline, interpolated M-LUT,
// interpolated L-LUT, and (Blackscholes only) interpolated fixed-point
// L-LUT (§4.1.2).
//
// By default the run simulates a reduced core count with the paper's
// exact per-core load and projects transfers to full scale — bit-
// identical per-core cycle counts at a fraction of the host time. Use
// -dpus 2545 -full for the complete 10M/30M-element simulation.
package main

import (
	"flag"
	"fmt"
	"runtime"

	"transpimlib/internal/workloads"
)

var (
	flagDPUs      = flag.Int("dpus", 64, "simulated PIM cores (paper: 2545)")
	flagFull      = flag.Bool("full", false, "use the paper's full element counts instead of scaling by core count")
	flagMeasured  = flag.Bool("measured", false, "also run measured host-CPU baselines on this machine")
	flagWorkload  = flag.String("workload", "all", "blackscholes | sigmoid | softmax | fused | all")
	flagCalibrate = flag.Bool("calibrate", false, "measure this host's math-library costs and print the derived CPU model")
)

func main() {
	flag.Parse()
	dpus := *flagDPUs
	bsN := dpus * (workloads.FullBlackscholesElements / workloads.FullDPUs)
	actN := dpus * (workloads.FullActivationElements / workloads.FullDPUs)
	if *flagFull {
		bsN = workloads.FullBlackscholesElements
		actN = workloads.FullActivationElements
	}

	if *flagCalibrate {
		c := workloads.Calibrate(1 << 20)
		fmt.Printf("host math calibration: exp=%.1fns log=%.1fns sqrt=%.1fns div=%.1fns flop=%.1fns\n",
			c.ExpNs, c.LogNs, c.SqrtNs, c.DivNs, c.FlopNs)
		_, perElem := c.ModelFor(2.1e9, 32)
		fmt.Printf("per-element cycles at 2.1 GHz (this host's library): blackscholes=%.0f sigmoid=%.0f softmax=%.0f\n",
			perElem("blackscholes"), perElem("sigmoid"), perElem("softmax"))
		fmt.Printf("analytic model uses:                                blackscholes=%.0f sigmoid=%.0f softmax=%.0f\n\n",
			workloads.BlackscholesCycles(), workloads.SigmoidCycles(), workloads.SoftmaxCycles())
	}

	fmt.Printf("== Figure 9 — %d PIM cores × 16 threads @350 MHz; CPU model: 2×16-core Xeon @2.1 GHz ==\n", dpus)
	fmt.Printf("   (kernel = PIM compute; transfer = Host↔PIM, projected to full %d-core scale)\n\n", workloads.FullDPUs)

	run := *flagWorkload
	if *flagFused || run == "fused" {
		fusedBench(dpus)
		if run == "fused" {
			return
		}
	}
	if run == "all" || run == "fig1" {
		fig1(dpus)
	}
	if run == "all" || run == "blackscholes" {
		blackscholes(dpus, bsN)
	}
	if run == "all" || run == "sigmoid" {
		sigmoid(dpus, actN)
	}
	if run == "all" || run == "softmax" {
		softmax(dpus, actN)
	}
}

func show(r workloads.Result, full int) {
	fmt.Println("  " + workloads.ProjectFull(r, full).String())
}

// showCPU projects a measured host-CPU result to the full element
// count: CPU time scales linearly with elements.
func showCPU(r workloads.Result, full int) {
	if r.Elements > 0 && r.Elements != full {
		r.KernelSeconds *= float64(full) / float64(r.Elements)
		r.Elements = full
	}
	fmt.Println("  " + r.String())
}

// fig1 prints the §4.3 Figure 1(b)-vs-1(c) comparison: activations
// resident on PIM computed in place versus shipped to the host.
func fig1(dpus int) {
	fmt.Println("-- Figure 1(b) vs 1(c): activation on host vs on PIM (§4.3) --")
	c, err := workloads.SigmoidFig1(dpus, workloads.FullActivationElements, workloads.LLUTIKit(12))
	if err != nil {
		fmt.Println("  ERROR:", err)
		return
	}
	fmt.Println("  " + c.String())
	fmt.Println()
}

func blackscholes(dpus, n int) {
	fmt.Println("-- Blackscholes --")
	opts := workloads.GenOptions(n, 1)
	show(workloads.BlackscholesCPUModeled(workloads.FullBlackscholesElements, 1), workloads.FullBlackscholesElements)
	show(workloads.BlackscholesCPUModeled(workloads.FullBlackscholesElements, 32), workloads.FullBlackscholesElements)
	if *flagMeasured {
		showCPU(workloads.BlackscholesCPU(opts, 1), workloads.FullBlackscholesElements)
		showCPU(workloads.BlackscholesCPU(opts, runtime.GOMAXPROCS(0)), workloads.FullBlackscholesElements)
	}
	for _, kit := range []workloads.Kit{
		workloads.PolyBaselineKit(),
		workloads.MLUTIKit(10),
		workloads.LLUTIKit(12),
		workloads.FixedLLUTIKit(12),
	} {
		r, err := workloads.BlackscholesPIM(dpus, opts, kit)
		if err != nil {
			fmt.Println("  ERROR:", err)
			continue
		}
		show(r, workloads.FullBlackscholesElements)
	}
	fmt.Println()
}

func sigmoid(dpus, n int) {
	fmt.Println("-- Sigmoid --")
	acts := workloads.GenActivations(n, 2)
	show(workloads.SigmoidCPUModeled(workloads.FullActivationElements, 1), workloads.FullActivationElements)
	show(workloads.SigmoidCPUModeled(workloads.FullActivationElements, 32), workloads.FullActivationElements)
	if *flagMeasured {
		showCPU(workloads.SigmoidCPU(acts, 1), workloads.FullActivationElements)
		showCPU(workloads.SigmoidCPU(acts, runtime.GOMAXPROCS(0)), workloads.FullActivationElements)
	}
	for _, kit := range []workloads.Kit{
		workloads.PolyActivationKit(),
		workloads.MLUTIKit(10),
		workloads.LLUTIKit(12),
	} {
		r, err := workloads.SigmoidPIM(dpus, acts, kit)
		if err != nil {
			fmt.Println("  ERROR:", err)
			continue
		}
		show(r, workloads.FullActivationElements)
	}
	fmt.Println()
}

func softmax(dpus, n int) {
	fmt.Println("-- Softmax --")
	acts := workloads.GenActivations(n, 3)
	show(workloads.SoftmaxCPUModeled(workloads.FullActivationElements, 1), workloads.FullActivationElements)
	show(workloads.SoftmaxCPUModeled(workloads.FullActivationElements, 32), workloads.FullActivationElements)
	if *flagMeasured {
		showCPU(workloads.SoftmaxCPU(acts, 1), workloads.FullActivationElements)
		showCPU(workloads.SoftmaxCPU(acts, runtime.GOMAXPROCS(0)), workloads.FullActivationElements)
	}
	for _, kit := range []workloads.Kit{
		workloads.PolyActivationKit(),
		workloads.MLUTIKit(10),
		workloads.LLUTIKit(12),
	} {
		r, err := workloads.SoftmaxPIM(dpus, acts, kit)
		if err != nil {
			fmt.Println("  ERROR:", err)
			continue
		}
		show(r, workloads.FullActivationElements)
	}
	fmt.Println()
}
