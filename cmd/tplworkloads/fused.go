package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"transpimlib/internal/engine"
	"transpimlib/internal/faultsim"
	"transpimlib/internal/workloads"
)

var (
	flagFused  = flag.Bool("fused", false, "run the fused-program workloads (softmax, ffn-gelu, logistic-step) side by side with the per-op baseline")
	flagVerify = flag.Bool("verify", false, "with -fused: fail (exit 1) unless fused outputs are bit-identical to the per-op baseline")
	flagFaults = flag.String("faults", "", "with -fused: fault-injection plan for the fused engine (e.g. \"seed=9,dpufail=1\"); proves the host-mirror degrade rung")
	flagJSON   = flag.String("json", "", "with -fused: write the side-by-side results as a JSON benchmark artifact to this path")
)

// fusedBench runs the three fused end-to-end scenarios on one engine,
// each through the fused on-device program and through the per-op
// baseline, and prints the side-by-side table (elements/s, modeled
// cycles, host↔PIM bytes moved, saved transfer cycles).
func fusedBench(dpus int) {
	n := dpus * 1024
	cfg := engine.Config{DPUs: dpus, MaxBatch: n, Ledger: true}
	if *flagFaults != "" {
		plan, err := faultsim.ParsePlan(*flagFaults)
		if err != nil {
			fmt.Println("  ERROR: bad -faults plan:", err)
			os.Exit(1)
		}
		cfg.Faults = &plan
	}
	e, err := engine.New(cfg)
	if err != nil {
		fmt.Println("  ERROR:", err)
		os.Exit(1)
	}
	defer e.Close()

	fmt.Printf("-- Fused programs vs per-op baseline (%d cores, n=%d per workload) --\n", dpus, n)
	var rows []workloads.FusedResult
	failed := false
	for _, cs := range workloads.FusedCases() {
		r, err := workloads.RunFused(e, cs, n, *flagVerify)
		if err != nil {
			fmt.Println("  ERROR:", err)
			failed = true
			continue
		}
		fmt.Println("  " + r.String())
		if r.Degraded {
			fmt.Printf("  %-14s recovered on the host mirror (degraded), outputs still bit-identical\n", "")
		}
		rows = append(rows, r)
	}
	fmt.Println()

	if *flagJSON != "" {
		doc := struct {
			Cores    int                     `json:"cores"`
			Elements int                     `json:"elements"`
			Faults   string                  `json:"faults,omitempty"`
			Results  []workloads.FusedResult `json:"results"`
		}{Cores: dpus, Elements: n, Faults: *flagFaults, Results: rows}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(*flagJSON, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Println("  ERROR: writing -json artifact:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
