// Command tpltop is a live terminal cost view for a tplserve
// instance: it polls /debug/ledger, /debug/timeline and /metrics and
// renders per-tenant cost rates — requests, elements, modeled kernel
// cycles and host↔PIM bytes per second, attributed by the cost
// ledger's exact batch partitioning — plus per-replica utilization
// (routed share, backlog, modeled-busy ratio) when the target is a
// cluster, and a request-rate sparkline from the windowed timeline.
//
// Rates are deltas between consecutive polls, so the first frame
// shows cumulative totals. Every debug endpoint is optional: a server
// without -ledger, -timeline or -profile renders "n/a" panes instead
// of an error, and when /debug/profile is present a profiler hotspot
// pane shows the top frames by attributed wall cycles (rated between
// polls like the ledger).
//
// Usage:
//
//	tpltop [-url http://localhost:9090] [-interval 1s] [-once]
//
// -once polls a single time and prints cumulative totals without
// clearing the screen (useful in scripts and CI logs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"transpimlib"
	"transpimlib/internal/profiler"
	"transpimlib/internal/telemetry/promparse"
)

func main() {
	url := flag.String("url", "http://localhost:9090", "base URL of a tplserve -listen endpoint")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "poll once, print totals, and exit")
	flag.Parse()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var prev *poll
	for {
		cur, err := fetch(*url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpltop:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, prev, cur)
		if *once {
			return
		}
		prev = cur
		select {
		case <-sig:
			return
		case <-time.After(*interval):
		}
	}
}

// poll is one scrape of the target: the cost ledger, the windowed
// timeline (nil-equivalent zero value when the store is off), the
// cluster/engine registry, and each replica's engine registry.
type poll struct {
	at         time.Time
	ledger     transpimlib.LedgerSnapshot
	ledgerOK   bool
	timeline   transpimlib.TimelineSnapshot
	timelineOK bool
	profile    profiler.Profile
	profileOK  bool
	metrics    map[string]float64
	replicas   map[int]map[string]float64
}

func fetch(base string) (*poll, error) {
	p := &poll{at: time.Now()}
	// Every debug endpoint is optional — a server run without the
	// matching flag 404s and the pane renders "n/a". Only /metrics
	// (always mounted) is load-bearing.
	p.ledgerOK = getJSON(base+"/debug/ledger", &p.ledger) == nil
	p.timelineOK = getJSON(base+"/debug/timeline", &p.timeline) == nil
	p.profileOK = getJSON(base+"/debug/profile", &p.profile) == nil
	var err error
	if p.metrics, err = getMetrics(base + "/metrics"); err != nil {
		return nil, err
	}
	p.replicas = map[int]map[string]float64{}
	for _, i := range replicaIDs(p.metrics) {
		m, err := getMetrics(fmt.Sprintf("%s/replica/%d/metrics", base, i))
		if err != nil {
			return nil, err
		}
		p.replicas[i] = m
	}
	return p, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func getMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return promparse.Parse(string(data))
}

// replicaIDs lists the replica indices present in a cluster
// exposition (empty for a single-engine target).
func replicaIDs(metrics map[string]float64) []int {
	var ids []int
	for name := range metrics {
		if promparse.Family(name) != "cluster_replica_queue_depth" {
			continue
		}
		if i, err := strconv.Atoi(promparse.Label(name, "replica")); err == nil {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	return ids
}

// tenantRow is one rendered ledger line: per-second rates between two
// polls, or cumulative totals when prev is nil.
type tenantRow struct {
	transpimlib.LedgerKey
	reqs, elems, kcycles float64
	mbIn, mbOut          float64
	degraded, shed, fail float64
}

// ledgerRows diffs two ledger snapshots into per-second rates (rows
// present only in cur are rated against a zero row; rows that
// disappeared are dropped). With prev nil it returns cumulative
// totals, dt 1.
func ledgerRows(prev, cur transpimlib.LedgerSnapshot, dt float64) []tenantRow {
	if dt <= 0 {
		dt = 1
	}
	base := map[transpimlib.LedgerKey]transpimlib.LedgerEntry{}
	for _, r := range prev.Rows {
		base[r.LedgerKey] = r.LedgerEntry
	}
	var out []tenantRow
	for _, r := range cur.Rows {
		b := base[r.LedgerKey]
		row := tenantRow{
			LedgerKey: r.LedgerKey,
			reqs:      float64(r.Requests-b.Requests) / dt,
			elems:     float64(r.Elements-b.Elements) / dt,
			kcycles:   float64(r.KernelCycles-b.KernelCycles) / dt / 1e3,
			mbIn:      float64(r.BytesIn-b.BytesIn) / dt / 1e6,
			mbOut:     float64(r.BytesOut-b.BytesOut) / dt / 1e6,
			degraded:  float64(r.Degraded-b.Degraded) / dt,
			shed:      float64(r.Shed-b.Shed) / dt,
			fail:      float64(r.Failovers-b.Failovers) / dt,
		}
		out = append(out, row)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].kcycles > out[j].kcycles })
	return out
}

// replicaRow is one replica's utilization line: routed requests per
// second, current backlog, and the modeled-busy ratio — modeled
// pipeline seconds (transfer + compute + drain) accumulated per wall
// second, which can exceed 1 because the simulator outruns its model.
type replicaRow struct {
	id            int
	routed        float64
	queue         float64
	modeledBusy   float64
	kcyclesPerSec float64
}

// busySeconds sums a replica's modeled pipeline seconds.
func busySeconds(m map[string]float64) float64 {
	return m["engine_transfer_in_seconds_total"] +
		m["engine_compute_seconds_total"] +
		m["engine_transfer_out_seconds_total"]
}

// replicaRows diffs per-replica registries into utilization rows.
// With prev nil the routed / cycle columns are cumulative totals.
func replicaRows(prev, cur *poll, dt float64) []replicaRow {
	if dt <= 0 {
		dt = 1
	}
	var ids []int
	for i := range cur.replicas {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	var out []replicaRow
	for _, i := range ids {
		m := cur.replicas[i]
		row := replicaRow{
			id:            i,
			routed:        cur.metrics[fmt.Sprintf("cluster_routed_total{replica=%q}", strconv.Itoa(i))],
			queue:         cur.metrics[fmt.Sprintf("cluster_replica_queue_depth{replica=%q}", strconv.Itoa(i))],
			modeledBusy:   busySeconds(m),
			kcyclesPerSec: m["engine_kernel_cycles_total"] / 1e3,
		}
		if prev != nil {
			pm := prev.replicas[i]
			row.routed = (row.routed - prev.metrics[fmt.Sprintf("cluster_routed_total{replica=%q}", strconv.Itoa(i))]) / dt
			row.modeledBusy = (row.modeledBusy - busySeconds(pm)) / dt
			row.kcyclesPerSec = (row.kcyclesPerSec - pm["engine_kernel_cycles_total"]/1e3) / dt
		}
		out = append(out, row)
	}
	return out
}

// renderHotspots prints the profiler pane: the top frames by
// attributed wall cycles — rated between polls via an exact profile
// subtraction, cumulative on the first frame. Absent /debug/profile
// the pane reads "n/a".
func renderHotspots(w io.Writer, prev, cur *poll, unit string) {
	fmt.Fprintln(w)
	if !cur.profileOK {
		fmt.Fprintln(w, "hotspots  n/a (no /debug/profile; run tplserve with -profile)")
		return
	}
	p := cur.profile
	if prev != nil && prev.profileOK {
		p = profiler.Sub(cur.profile, prev.profile)
	}
	fmt.Fprintf(w, "%-10s %-10s %-14s %-8s %-6s %14s %7s\n",
		"TENANT", "FN", "METHOD", "STAGE", "CLASS", "WALLCYC"+unit, "%")
	if len(p.Frames) == 0 {
		fmt.Fprintln(w, "no profiled launches in this window")
		return
	}
	const hot = 5
	for _, f := range p.Top(hot) {
		tenant := f.Tenant
		if tenant == "" {
			tenant = "(anon)"
		}
		share := 0.0
		if p.TotalWall > 0 {
			share = 100 * float64(f.WallCycles) / float64(p.TotalWall)
		}
		fmt.Fprintf(w, "%-10s %-10s %-14s %-8s %-6s %14d %6.2f%%\n",
			tenant, f.Function, f.Method, f.Stage, f.Class, f.WallCycles, share)
	}
	if len(p.Frames) > hot {
		fmt.Fprintf(w, "(+%d more frames; tplprof -url renders the full profile)\n", len(p.Frames)-hot)
	}
}

// rateSparkline renders the timeline's per-window values of one
// series as a bar string, scaled to the largest window.
func rateSparkline(tl transpimlib.TimelineSnapshot, series string) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var vals []float64
	var max float64
	for _, w := range tl.Windows {
		v := w.Values[series]
		vals = append(vals, v)
		if v > max {
			max = v
		}
	}
	if len(vals) == 0 || max == 0 {
		return ""
	}
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteRune(glyphs[int(float64(len(glyphs)-1)*v/max)])
	}
	return sb.String()
}

func render(w io.Writer, prev, cur *poll) {
	dt := 1.0
	unit := "total"
	if prev != nil {
		dt = cur.at.Sub(prev.at).Seconds()
		unit = "/s"
	}
	fmt.Fprintf(w, "tpltop  tenants=%d  replicas=%d  (%s)\n",
		len(cur.ledger.Rows), len(cur.replicas), unit)
	if !cur.timelineOK {
		fmt.Fprintln(w, "req/s timeline  n/a (no /debug/timeline; run tplserve with -timeline)")
	} else {
		for _, series := range []string{"cluster_requests_total:rate", "engine_requests_total:rate"} {
			if sl := rateSparkline(cur.timeline, series); sl != "" {
				fmt.Fprintf(w, "req/s timeline  %s\n", sl)
				break
			}
		}
	}
	fmt.Fprintln(w)

	if !cur.ledgerOK {
		fmt.Fprintln(w, "tenant ledger  n/a (no /debug/ledger; run tplserve with -ledger)")
	} else {
		fmt.Fprintf(w, "%-10s %-10s %-14s %8s %9s %11s %8s %8s %6s %5s %5s\n",
			"TENANT", "FN", "METHOD", "REQ"+unit, "ELEM"+unit, "KCYC"+unit, "MB-IN", "MB-OUT", "DEGR", "SHED", "FAIL")
		rows := ledgerRows(func() transpimlib.LedgerSnapshot {
			if prev != nil {
				return prev.ledger
			}
			return transpimlib.LedgerSnapshot{}
		}(), cur.ledger, dt)
		if len(rows) == 0 {
			fmt.Fprintln(w, "no ledger rows yet (no attributed traffic)")
		}
		for _, r := range rows {
			tenant := r.Tenant
			if tenant == "" {
				tenant = "(anon)"
			}
			fmt.Fprintf(w, "%-10s %-10s %-14s %8.1f %9.0f %11.1f %8.2f %8.2f %6.0f %5.0f %5.0f\n",
				tenant, r.Function, r.Method, r.reqs, r.elems, r.kcycles,
				r.mbIn, r.mbOut, r.degraded, r.shed, r.fail)
		}
		if n := cur.ledger.Overflowed; n > 0 {
			fmt.Fprintf(w, "(+%d rows collapsed into the overflow bucket)\n", n)
		}
	}

	renderHotspots(w, prev, cur, unit)

	reps := replicaRows(prev, cur, dt)
	if len(reps) > 0 {
		fmt.Fprintf(w, "\n%-8s %10s %7s %10s %12s\n",
			"REPLICA", "ROUTED"+unit, "QUEUE", "BUSY(x)", "KCYC"+unit)
		for _, r := range reps {
			fmt.Fprintf(w, "%-8d %10.1f %7.0f %10.3f %12.1f\n",
				r.id, r.routed, r.queue, r.modeledBusy, r.kcyclesPerSec)
		}
	}
}
