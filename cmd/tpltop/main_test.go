package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"transpimlib"
)

func TestReplicaIDs(t *testing.T) {
	m := map[string]float64{
		`cluster_replica_queue_depth{replica="2"}`: 0,
		`cluster_replica_queue_depth{replica="0"}`: 3,
		`cluster_replica_queue_depth{replica="1"}`: 1,
		`cluster_routed_total{replica="0"}`:        9,
		"engine_requests_total":                    4,
	}
	ids := replicaIDs(m)
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("replicaIDs = %v", ids)
	}
	if ids := replicaIDs(map[string]float64{"engine_requests_total": 1}); len(ids) != 0 {
		t.Fatalf("single-engine target yields replicas: %v", ids)
	}
}

func TestLedgerRowsRates(t *testing.T) {
	key := transpimlib.LedgerKey{Tenant: "acme", Function: "sigmoid", Method: "l-lut(i)"}
	prev := transpimlib.LedgerSnapshot{Rows: []transpimlib.LedgerRow{{
		LedgerKey:   key,
		LedgerEntry: transpimlib.LedgerEntry{Requests: 10, Elements: 1000, KernelCycles: 50_000, BytesIn: 4_000_000},
	}}}
	cur := transpimlib.LedgerSnapshot{Rows: []transpimlib.LedgerRow{{
		LedgerKey:   key,
		LedgerEntry: transpimlib.LedgerEntry{Requests: 30, Elements: 3000, KernelCycles: 150_000, BytesIn: 12_000_000},
	}}}
	rows := ledgerRows(prev, cur, 2)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r.reqs != 10 || r.elems != 1000 || r.kcycles != 50 || r.mbIn != 4 {
		t.Fatalf("rates = %+v", r)
	}

	// No prev: cumulative totals.
	rows = ledgerRows(transpimlib.LedgerSnapshot{}, cur, 1)
	if rows[0].reqs != 30 || rows[0].kcycles != 150 {
		t.Fatalf("totals = %+v", rows[0])
	}
}

func TestLedgerRowsSortedByCost(t *testing.T) {
	cur := transpimlib.LedgerSnapshot{Rows: []transpimlib.LedgerRow{
		{LedgerKey: transpimlib.LedgerKey{Tenant: "cheap"}, LedgerEntry: transpimlib.LedgerEntry{KernelCycles: 1_000}},
		{LedgerKey: transpimlib.LedgerKey{Tenant: "costly"}, LedgerEntry: transpimlib.LedgerEntry{KernelCycles: 9_000}},
	}}
	rows := ledgerRows(transpimlib.LedgerSnapshot{}, cur, 1)
	if rows[0].Tenant != "costly" || rows[1].Tenant != "cheap" {
		t.Fatalf("sort order: %v, %v", rows[0].Tenant, rows[1].Tenant)
	}
}

func TestRateSparkline(t *testing.T) {
	tl := transpimlib.TimelineSnapshot{Windows: []transpimlib.TimelineWindow{
		{Values: map[string]float64{"x:rate": 1}},
		{Values: map[string]float64{"x:rate": 10}},
	}}
	s := rateSparkline(tl, "x:rate")
	if n := len([]rune(s)); n != 2 {
		t.Fatalf("sparkline %q has %d glyphs, want 2", s, n)
	}
	r := []rune(s)
	if r[0] >= r[1] {
		t.Fatalf("sparkline not monotone: %q", s)
	}
	if rateSparkline(transpimlib.TimelineSnapshot{}, "x:rate") != "" {
		t.Fatal("empty timeline should render nothing")
	}
}

// TestFetchRenderLive runs the real fetch/render path against a live
// instrumented cluster mounted the way tplserve mounts it.
func TestFetchRenderLive(t *testing.T) {
	cl, err := transpimlib.NewCluster(transpimlib.ClusterConfig{
		Replicas: 2,
		Engine:   transpimlib.EngineConfig{DPUs: 2, Shards: 1},
		Seed:     1,
		Ledger:   true,
		Timeline: transpimlib.TimelineConfig{Enabled: true, BucketWidth: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	spec := transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true, SizeLog2: 12}
	xs := make([]float32, 256)
	for i := range xs {
		xs[i] = -2 + 4*float32(i)/256
	}
	for r := 0; r < 4; r++ {
		if _, _, err := cl.EvaluateBatchAs("acme", transpimlib.Sigmoid, spec, xs); err != nil {
			t.Fatal(err)
		}
	}
	cl.Observe().Timeline.Tick(time.Now())

	mux := http.NewServeMux()
	mux.Handle("/", cl.Observe().Handler())
	mux.Handle("/replica/0/", http.StripPrefix("/replica/0", cl.ReplicaObserve(0).Handler()))
	mux.Handle("/replica/1/", http.StripPrefix("/replica/1", cl.ReplicaObserve(1).Handler()))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p1, err := fetch(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.ledger.Rows) == 0 {
		t.Fatal("fetch returned no ledger rows")
	}
	if len(p1.replicas) != 2 {
		t.Fatalf("fetch found %d replicas, want 2", len(p1.replicas))
	}

	for r := 0; r < 4; r++ {
		if _, _, err := cl.EvaluateBatchAs("acme", transpimlib.Sigmoid, spec, xs); err != nil {
			t.Fatal(err)
		}
	}
	p2, err := fetch(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	p2.at = p1.at.Add(time.Second) // pin dt for deterministic rates

	var sb strings.Builder
	render(&sb, p1, p2)
	out := sb.String()
	for _, want := range []string{"acme", "sigmoid", "l-lut(i)", "REPLICA", "REQ/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output lacks %q:\n%s", want, out)
		}
	}
	// 4 requests over the pinned 1s window on the acme row.
	if !strings.Contains(out, " 4.0 ") {
		t.Fatalf("expected a 4.0 req/s cell:\n%s", out)
	}

	// Totals frame (no prev) renders too.
	sb.Reset()
	render(&sb, nil, p2)
	if !strings.Contains(sb.String(), "total") {
		t.Fatalf("totals frame: %s", sb.String())
	}
}
