package main

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"transpimlib"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// testCluster builds a small fully instrumented cluster and drives a
// deterministic sequential workload through it: fixed seed, fixed
// request order, no concurrency — so placement, and therefore each
// replica's metric exposition structure, is reproducible.
func testCluster(t *testing.T) *transpimlib.Cluster {
	t.Helper()
	cl, err := transpimlib.NewCluster(transpimlib.ClusterConfig{
		Replicas:   2,
		Engine:     transpimlib.EngineConfig{DPUs: 2, Shards: 1},
		Seed:       1,
		TraceDepth: 8,
		Ledger:     true,
		Timeline:   transpimlib.TimelineConfig{Enabled: true, BucketWidth: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	jobs := mixedWorkload()
	for r := 0; r < 3; r++ {
		for _, j := range jobs {
			xs := make([]float32, 64)
			for i := range xs {
				xs[i] = -2 + 4*float32(i)/64
			}
			if _, _, err := cl.EvaluateBatchAs(j.tenant(), j.fn, j.cfg, xs); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cl
}

// get runs one request through the handler without a network listener.
func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// normalizeExposition strips the sample values from a Prometheus text
// exposition, keeping comments, series names and label sets — the
// structural part that is deterministic across runs (counts and
// latencies are not).
func normalizeExposition(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") {
			if i := strings.LastIndexByte(line, ' '); i > 0 {
				line = line[:i]
			}
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestClusterHandlerReplicaMounts pins the handler's mount layout:
// cluster telemetry at the root, each replica's full engine telemetry
// under /replica/<i>/, with the replica exposition structure held to a
// golden file.
func TestClusterHandlerReplicaMounts(t *testing.T) {
	h := clusterHandler(testCluster(t))

	root := get(h, "/metrics")
	if root.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", root.Code)
	}
	for _, want := range []string{"cluster_requests_total", "cluster_replica_queue_depth"} {
		if !strings.Contains(root.Body.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if strings.Contains(root.Body.String(), "engine_requests_total") {
		t.Error("/metrics leaks replica engine series into the cluster exposition")
	}

	for _, path := range []string{"/replica/0/metrics", "/replica/1/metrics"} {
		rec := get(h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "engine_requests_total") {
			t.Errorf("%s missing engine series", path)
		}
	}
	if rec := get(h, "/replica/2/metrics"); rec.Code != http.StatusNotFound {
		t.Errorf("/replica/2/metrics (out of range): %d, want 404", rec.Code)
	}

	got := normalizeExposition(get(h, "/replica/0/metrics").Body.String())
	golden := filepath.Join("testdata", "replica0.metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("replica 0 exposition structure drifted from %s (run with -update to regenerate)\ngot:\n%s", golden, got)
	}
}

// TestClusterHandlerTimeline pins the windowed-store endpoint: the
// cluster-level /debug/timeline serves windows with traffic-bearing
// rate series after a tick, replica timelines stay 404 (the store is
// cluster-scoped unless a replica enables its own), and /debug/ledger
// serves non-empty tenant rows.
func TestClusterHandlerTimeline(t *testing.T) {
	cl := testCluster(t)
	h := clusterHandler(cl)

	// Close the first window deterministically instead of waiting for
	// the background ticker.
	cl.Observe().Timeline.Tick(time.Now())

	rec := get(h, "/debug/timeline")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/timeline: %d", rec.Code)
	}
	var snap transpimlib.TimelineSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.BucketSeconds <= 0 || len(snap.Windows) == 0 {
		t.Fatalf("timeline snapshot empty: %+v", snap)
	}
	last := snap.Windows[len(snap.Windows)-1]
	if last.Values["cluster_requests_total:rate"] <= 0 {
		t.Errorf("no cluster request rate in window: %v", last.Values)
	}

	if rec := get(h, "/replica/0/debug/timeline"); rec.Code != http.StatusNotFound {
		t.Errorf("/replica/0/debug/timeline: %d, want 404 (replica store not enabled)", rec.Code)
	}

	rec = get(h, "/debug/ledger")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/ledger: %d", rec.Code)
	}
	var led transpimlib.LedgerSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &led); err != nil {
		t.Fatal(err)
	}
	if len(led.Rows) == 0 {
		t.Fatal("ledger has no tenant rows after traffic")
	}
	for _, r := range led.Rows {
		if r.Tenant == "" || r.Elements == 0 {
			t.Errorf("ledger row incomplete: %+v", r)
		}
	}
}

// TestClusterHandlerConcurrentScrape hammers every mounted endpoint
// while clients keep submitting — the -race guard for the observer
// paths sharing state with the serving path.
func TestClusterHandlerConcurrentScrape(t *testing.T) {
	cl := testCluster(t)
	h := clusterHandler(cl)
	paths := []string{
		"/metrics", "/debug/trace", "/debug/timeline", "/debug/ledger",
		"/replica/0/metrics", "/replica/1/metrics",
		"/replica/0/debug/trace", "/replica/1/debug/trace",
	}
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			j := mixedWorkload()[c%3]
			xs := make([]float32, 128)
			for i := range xs {
				xs[i] = -1 + 2*float32(i)/128
			}
			for r := 0; r < 10; r++ {
				if _, _, err := cl.EvaluateBatchAs(j.tenant(), j.fn, j.cfg, xs); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				p := paths[(s+i)%len(paths)]
				if rec := get(h, p); rec.Code != http.StatusOK {
					t.Errorf("%s: %d", p, rec.Code)
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			cl.Observe().Timeline.Tick(time.Now())
		}
	}()
	wg.Wait()
}
