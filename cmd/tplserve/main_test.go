package main

import "testing"

func TestParseSLOs(t *testing.T) {
	slos, err := parseSLOs("fn=sigmoid,method=l-lut(i),mae=1e-3; method=cordic,ulp=4096")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("parsed %d SLOs, want 2", len(slos))
	}
	if slos[0].Function != "sigmoid" || slos[0].Method != "l-lut(i)" || slos[0].MaxMAE != 1e-3 {
		t.Fatalf("slo[0] = %+v", slos[0])
	}
	if slos[1].Method != "cordic" || slos[1].MaxULP != 4096 || slos[1].MaxMAE != 0 {
		t.Fatalf("slo[1] = %+v", slos[1])
	}

	if s, err := parseSLOs(""); err != nil || s != nil {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
	for _, bad := range []string{"mae", "mae=abc", "nope=1", "fn=sin"} {
		if _, err := parseSLOs(bad); err == nil {
			t.Fatalf("parseSLOs(%q) accepted", bad)
		}
	}
}

func TestJobTenant(t *testing.T) {
	for _, j := range mixedWorkload() {
		tn := j.tenant()
		if tn == "" || tn == j.name {
			t.Fatalf("tenant(%q) = %q", j.name, tn)
		}
	}
}
