package main

import (
	"errors"
	"net"
	"testing"
)

func TestListenExitCode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Binding the same address again must map to the dedicated exit
	// code so scripts can distinguish "port taken" from other failures.
	_, err = net.Listen("tcp", ln.Addr().String())
	if err == nil {
		t.Fatal("second bind unexpectedly succeeded")
	}
	if code := listenExitCode(err); code != 3 {
		t.Fatalf("listenExitCode(EADDRINUSE) = %d, want 3", code)
	}
	if code := listenExitCode(errors.New("some other failure")); code != 1 {
		t.Fatalf("listenExitCode(other) = %d, want 1", code)
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := parseSLOs("fn=sigmoid,method=l-lut(i),mae=1e-3; method=cordic,ulp=4096")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("parsed %d SLOs, want 2", len(slos))
	}
	if slos[0].Function != "sigmoid" || slos[0].Method != "l-lut(i)" || slos[0].MaxMAE != 1e-3 {
		t.Fatalf("slo[0] = %+v", slos[0])
	}
	if slos[1].Method != "cordic" || slos[1].MaxULP != 4096 || slos[1].MaxMAE != 0 {
		t.Fatalf("slo[1] = %+v", slos[1])
	}

	if s, err := parseSLOs(""); err != nil || s != nil {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
	for _, bad := range []string{"mae", "mae=abc", "nope=1", "fn=sin"} {
		if _, err := parseSLOs(bad); err == nil {
			t.Fatalf("parseSLOs(%q) accepted", bad)
		}
	}
}

func TestJobTenant(t *testing.T) {
	for _, j := range mixedWorkload() {
		tn := j.tenant()
		if tn == "" || tn == j.name {
			t.Fatalf("tenant(%q) = %q", j.name, tn)
		}
	}
}
