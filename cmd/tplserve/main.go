// Command tplserve demonstrates the serving engine: a fleet of
// concurrent clients firing mixed sigmoid/GELU/exp batches at a
// multi-core PIM system through transpimlib.Engine. It reports
// throughput, request latency, batching/coalescing behaviour, the
// table-cache hit rate, and the modeled per-stage costs.
//
// With -listen it also exposes the engine's telemetry over HTTP —
// /metrics in Prometheus text format and /debug/trace returning the
// retained request span trees (?format=chrome for a Chrome
// trace_event document) — and with -hold it keeps serving after the
// workload finishes so the endpoints can be scraped.
//
// With -faults it injects deterministic faults (the faultsim plan
// language) and reports the engine's recovery activity. SIGINT or
// SIGTERM shuts down gracefully: clients stop submitting, in-flight
// batches drain, and the final summary still prints.
//
// Usage:
//
//	tplserve [-dpus 8] [-shards 2] [-clients 6] [-requests 24]
//	         [-elems 1024] [-window 200us] [-seed 1]
//	         [-listen :9090] [-hold 0s] [-trace 32] [-profile]
//	         [-faults "seed=42,dpufail=0.05,transfer=0.02"]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"transpimlib"
)

type job struct {
	name string
	fn   transpimlib.Function
	cfg  transpimlib.Config
	ref  func(float64) float64
}

func mixedWorkload() []job {
	return []job{
		{"sigmoid/L-LUT-i", transpimlib.Sigmoid,
			transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true, SizeLog2: 12},
			func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }},
		{"gelu/DL-LUT-i", transpimlib.GELU,
			transpimlib.Config{Method: transpimlib.DLLUT, Interpolated: true, SizeLog2: 12},
			func(x float64) float64 { return x / 2 * (1 + math.Erf(x/math.Sqrt2)) }},
		{"exp/fxL-LUT-i", transpimlib.Exp,
			transpimlib.Config{Method: transpimlib.LLUTFixed, Interpolated: true, SizeLog2: 12},
			math.Exp},
	}
}

func main() {
	dpus := flag.Int("dpus", 8, "simulated PIM cores")
	shards := flag.Int("shards", 2, "pipeline shards (dpus must divide evenly)")
	clients := flag.Int("clients", 6, "concurrent client goroutines")
	requests := flag.Int("requests", 24, "requests per client")
	elems := flag.Int("elems", 1024, "elements per request")
	window := flag.Duration("window", 200*time.Microsecond, "batcher coalescing window")
	seed := flag.Int64("seed", 1, "input RNG seed")
	listen := flag.String("listen", "", "serve /metrics and /debug/trace on this address (e.g. :9090)")
	hold := flag.Duration("hold", 0, "keep the HTTP endpoints up this long after the workload (requires -listen)")
	traceDepth := flag.Int("trace", 32, "request traces to retain (0 disables tracing)")
	profile := flag.Bool("profile", false, "per-DPU kernel-launch profiling (pim_* metrics)")
	faults := flag.String("faults", "", "fault-injection plan (e.g. \"seed=42,dpufail=0.05,transfer=0.02\")")
	flag.Parse()

	// Graceful shutdown: the first SIGINT/SIGTERM cancels ctx — clients
	// stop submitting, in-flight batches drain through eng.Close, and
	// the summary still prints. A second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng, err := transpimlib.NewEngine(transpimlib.EngineConfig{
		DPUs: *dpus, Shards: *shards, BatchWindow: *window,
		TraceDepth: *traceDepth, Profile: *profile, Faults: *faults,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplserve:", err)
		os.Exit(1)
	}
	defer eng.Close()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tplserve:", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: eng.Observe().Handler()}
		go func() {
			if err := srv.Serve(ln); err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "tplserve: http:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics and /debug/trace\n", ln.Addr())
	}

	jobs := mixedWorkload()
	fmt.Printf("tplserve: %d cores / %d shards, %d clients × %d requests × %d elems\n",
		*dpus, *shards, *clients, *requests, *elems)
	fmt.Printf("workload mix: %s | %s | %s\n", jobs[0].name, jobs[1].name, jobs[2].name)

	type obs struct {
		lat   time.Duration
		setup float64
		hit   bool
	}
	all := make([][]obs, *clients)
	var wg sync.WaitGroup
	var failures sync.Map
	start := time.Now()
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for r := 0; r < *requests; r++ {
				if ctx.Err() != nil {
					return // shutdown requested: stop submitting
				}
				j := jobs[(c+r)%len(jobs)]
				xs := make([]float32, *elems)
				for i := range xs {
					xs[i] = -2 + 4*rng.Float32()
				}
				ys, st, err := eng.EvaluateBatch(j.fn, j.cfg, xs)
				if err != nil {
					if ctx.Err() == nil {
						failures.Store(fmt.Sprintf("client %d req %d", c, r), err)
					}
					return
				}
				var worst float64
				for i, x := range xs {
					if d := math.Abs(float64(ys[i]) - j.ref(float64(x))); d > worst {
						worst = d
					}
				}
				if worst > 0.05 {
					failures.Store(fmt.Sprintf("client %d req %d", c, r),
						fmt.Errorf("%s max abs error %.3g", j.name, worst))
					return
				}
				all[c] = append(all[c], obs{st.Latency, st.SetupSeconds, st.CacheHit})
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if ctx.Err() != nil {
		fmt.Println("\ntplserve: shutdown requested, draining in-flight batches…")
	}
	eng.Close() // drain in-flight batches and settle counters before the summary

	bad := 0
	failures.Range(func(k, v any) bool {
		fmt.Fprintf(os.Stderr, "tplserve: %v: %v\n", k, v)
		bad++
		return true
	})
	if bad > 0 {
		os.Exit(1)
	}

	var lats []time.Duration
	var warm int
	for _, co := range all {
		for _, o := range co {
			lats = append(lats, o.lat)
			if o.hit && o.setup == 0 {
				warm++
			}
		}
	}
	st := eng.Stats()
	elemsTotal := st.Elements
	fmt.Printf("\nengine served %d requests (%d elements) in %v\n",
		st.Requests, elemsTotal, wall.Round(time.Microsecond))
	fmt.Printf("throughput: %.1f Melem/s host wall-clock\n",
		float64(elemsTotal)/wall.Seconds()/1e6)
	fmt.Printf("latency: p50 %v  p95 %v  max %v\n",
		percentile(lats, 0.50), percentile(lats, 0.95), percentile(lats, 1.0))
	fmt.Printf("batching: %d batches for %d requests (%d coalesced multi-request batches)\n",
		st.Batches, st.Requests, st.CoalescedBatches)
	fmt.Printf("table cache: %d specs resident, %d hits / %d misses (%d fully warm requests)\n",
		eng.CachedSpecs(), st.CacheHits, st.CacheMisses, warm)
	fmt.Printf("modeled stage costs: setup %.3gs | in %.3gs | compute %.3gs (%d kcycles) | out %.3gs\n",
		st.SetupSeconds, st.TransferInSeconds, st.ComputeSeconds,
		st.KernelCycles/1000, st.TransferOutSeconds)
	fmt.Printf("bytes moved: %d host→PIM, %d PIM→host\n", st.BytesIn, st.BytesOut)
	if st.RequestErrors > 0 {
		fmt.Printf("request errors: %d\n", st.RequestErrors)
	}
	if *faults != "" {
		fmt.Printf("reliability: %d faults injected | %d launch retries | %d transfer retries | %d timeouts\n",
			st.FaultsInjected, st.LaunchRetries, st.TransferRetries, st.LaunchTimeouts)
		fmt.Printf("recovery: %d remaps | %d hedges | %d degraded batches | %d table repairs | %d quarantined cores\n",
			st.Remaps, st.Hedges, st.DegradedBatches, st.TableRepairs, st.QuarantinedDPUs)
		var quarantined, probation int
		for _, h := range eng.Health() {
			if h.Quarantined {
				quarantined++
			}
			if h.Probation {
				probation++
			}
		}
		fmt.Printf("health: %d cores quarantined, %d on probation, %d fault events logged\n",
			quarantined, probation, len(eng.FaultEvents()))
	}
	if tr, ok := eng.TraceLast(); ok {
		root := tr.Root
		fmt.Printf("last trace: #%d %s wall %v, %d spans (GET /debug/trace for the tree)\n",
			tr.ID, root.Name, root.Wall().Round(time.Microsecond), countSpans(root))
	}
	if *listen != "" && *hold > 0 && ctx.Err() == nil {
		fmt.Printf("holding telemetry endpoints for %v (SIGINT to stop)…\n", *hold)
		select {
		case <-ctx.Done():
		case <-time.After(*hold):
		}
	}
}

func countSpans(s *transpimlib.Span) int {
	n := 1
	for _, c := range s.Child {
		n += countSpans(c)
	}
	return n
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ { // insertion sort: n is tiny
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
