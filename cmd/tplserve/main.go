// Command tplserve demonstrates the serving engine: a fleet of
// concurrent clients firing mixed sigmoid/GELU/exp batches at a
// multi-core PIM system through transpimlib.Engine. It reports
// throughput, request latency, batching/coalescing behaviour, the
// table-cache hit rate, and the modeled per-stage costs. All output is
// structured log/slog — human-readable text by default, one JSON
// object per line with -logfmt=json.
//
// With -listen it also exposes the engine's telemetry over HTTP —
// /metrics in Prometheus text format, /debug/trace returning the
// retained request span trees (?format=chrome for a Chrome
// trace_event document), and /debug/accuracy with the shadow sampler's
// accuracy snapshot — and with -hold it keeps serving after the
// workload finishes so the endpoints can be scraped.
//
// With -accuracy the engine shadow-samples that fraction of every
// request's elements against the float64 host reference and keeps
// per-(function, method, tenant) error statistics; each workload job
// runs under its own tenant name so the series separate. -slo installs
// accuracy objectives ("fn=sigmoid,method=l-lut(i),mae=1e-3;…"),
// -acc-gate makes cumulative SLO violations fatal at exit (the CI
// accuracy gate), and -acc-out writes the final accuracy snapshot to a
// JSON file.
//
// With -ledger every request is charged to its (tenant, function,
// method) row of the cost ledger — elements, modeled kernel cycles,
// host↔PIM bytes, degrade/shed/failover counts — served at
// /debug/ledger and summarized at exit. With -timeline D the registry
// is sampled into D-wide windows served at /debug/timeline (per-window
// rates and histogram percentiles); cmd/tpltop renders both live.
//
// With -profile the modeled-cycle profiler attributes every launch's
// cycles to (tenant, function, method, stage, instruction class)
// stacks: /debug/profile serves the profile as JSON, folded flamegraph
// text (?format=folded) or gzipped pprof profile.proto
// (?format=pprof), and /debug/heatmap serves per-DPU issue/DMA/idle
// utilization; cmd/tplprof fetches, folds, and diffs them.
//
// With -faults it injects deterministic faults (the faultsim plan
// language) and reports the engine's recovery activity. SIGINT or
// SIGTERM shuts down gracefully: clients stop submitting, in-flight
// batches drain, and the final summary still prints.
//
// With -replicas N > 1 the workload runs against a replicated cluster
// (transpimlib.Cluster) instead of a single engine: requests route by
// consistent hashing with least-loaded fallback and replica-level
// failover, and the summary adds per-replica routing shares and
// health. -listen then serves the cluster's telemetry — cluster_*
// series (per-replica routed counts, queue depths, health gauges) at
// /metrics, with each replica's full engine telemetry mounted under
// /replica/<i>/ (so tplwatch can follow either the cluster or one
// replica).
//
// Exit codes: 0 success; 1 workload or gate failure; 2 bad usage;
// 3 the -listen address is already in use.
//
// Usage:
//
//	tplserve [-dpus 8] [-shards 2] [-clients 6] [-requests 24]
//	         [-elems 1024] [-window 200us] [-seed 1]
//	         [-replicas 1] [-replication 2]
//	         [-listen :9090] [-hold 0s] [-trace 32] [-profile]
//	         [-ledger] [-timeline 1s]
//	         [-logfmt text|json]
//	         [-accuracy 0.01] [-slo "method=l-lut(i),mae=1e-3"]
//	         [-acc-gate] [-acc-out accuracy.json]
//	         [-faults "seed=42,dpufail=0.05,transfer=0.02"]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"transpimlib"
	"transpimlib/internal/stats"
)

type job struct {
	name string
	fn   transpimlib.Function
	cfg  transpimlib.Config
	ref  func(float64) float64
}

func mixedWorkload() []job {
	return []job{
		{"sigmoid/L-LUT-i", transpimlib.Sigmoid,
			transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true, SizeLog2: 12},
			func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }},
		{"gelu/DL-LUT-i", transpimlib.GELU,
			transpimlib.Config{Method: transpimlib.DLLUT, Interpolated: true, SizeLog2: 12},
			func(x float64) float64 { return x / 2 * (1 + math.Erf(x/math.Sqrt2)) }},
		{"exp/fxL-LUT-i", transpimlib.Exp,
			transpimlib.Config{Method: transpimlib.LLUTFixed, Interpolated: true, SizeLog2: 12},
			math.Exp},
	}
}

// tenant derives the accuracy-series tenant tag from a job name
// ("sigmoid/L-LUT-i" → "sigmoid").
func (j job) tenant() string {
	if i := strings.IndexByte(j.name, '/'); i > 0 {
		return j.name[:i]
	}
	return j.name
}

// parseSLOs parses the -slo flag: semicolon-separated objectives, each
// a comma-separated list of fn=, method=, tenant=, mae=, ulp= fields.
func parseSLOs(s string) ([]transpimlib.AccuracySLO, error) {
	var out []transpimlib.AccuracySLO
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		var o transpimlib.AccuracySLO
		for _, kv := range strings.Split(clause, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("bad SLO field %q (want key=value)", kv)
			}
			switch key {
			case "fn", "function":
				o.Function = val
			case "method":
				o.Method = val
			case "tenant":
				o.Tenant = val
			case "mae":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad SLO mae %q: %v", val, err)
				}
				o.MaxMAE = f
			case "ulp":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad SLO ulp %q: %v", val, err)
				}
				o.MaxULP = f
			default:
				return nil, fmt.Errorf("unknown SLO field %q", key)
			}
		}
		if o.MaxMAE == 0 && o.MaxULP == 0 {
			return nil, fmt.Errorf("SLO %q sets no bound (mae= or ulp=)", clause)
		}
		out = append(out, o)
	}
	return out, nil
}

// listenExitCode maps a -listen failure to the process exit code: 3
// when the address is already in use (the caller can pick another
// port or wait for the previous instance), 1 for anything else.
func listenExitCode(err error) int {
	if errors.Is(err, syscall.EADDRINUSE) {
		return 3
	}
	return 1
}

// clusterHandler mounts the cluster's telemetry at the root — the
// cluster_* (and, with -ledger, tenant_*) series at /metrics plus the
// /debug/trace, /debug/timeline and /debug/ledger documents — and each
// replica's full engine telemetry under /replica/<i>/, so a scraper
// can follow either the whole cluster or one replica.
func clusterHandler(cl *transpimlib.Cluster) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", cl.Observe().Handler())
	for i := 0; i < cl.Replicas(); i++ {
		prefix := fmt.Sprintf("/replica/%d", i)
		mux.Handle(prefix+"/", http.StripPrefix(prefix, cl.ReplicaObserve(i).Handler()))
	}
	return mux
}

// logLedger prints the cost ledger's per-(tenant, function, method)
// rows, highest modeled kernel cycles first.
func logLedger(log *slog.Logger, snap transpimlib.LedgerSnapshot) {
	rows := append([]transpimlib.LedgerRow(nil), snap.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].KernelCycles > rows[j].KernelCycles })
	for _, r := range rows {
		tenant := r.Tenant
		if tenant == "" {
			tenant = "(anonymous)"
		}
		log.Info("ledger row",
			"tenant", tenant, "fn", r.Function, "method", r.Method,
			"requests", r.Requests, "elements", r.Elements,
			"kernel_kcycles", r.KernelCycles/1000,
			"bytes_in", r.BytesIn, "bytes_out", r.BytesOut,
			"modeled_s", r.ModeledSeconds,
			"degraded", r.Degraded, "shed", r.Shed, "failovers", r.Failovers)
	}
	if snap.Overflowed > 0 {
		log.Warn("ledger overflow", "dropped_rows", snap.Overflowed)
	}
}

// sumStats adds up the printed fields of per-replica engine stats for
// the cluster-mode summary.
func sumStats(list []transpimlib.EngineStats) transpimlib.EngineStats {
	var t transpimlib.EngineStats
	for _, s := range list {
		t.Requests += s.Requests
		t.Batches += s.Batches
		t.Elements += s.Elements
		t.RequestErrors += s.RequestErrors
		t.CoalescedBatches += s.CoalescedBatches
		t.CacheHits += s.CacheHits
		t.CacheMisses += s.CacheMisses
		t.SetupSeconds += s.SetupSeconds
		t.TransferInSeconds += s.TransferInSeconds
		t.ComputeSeconds += s.ComputeSeconds
		t.TransferOutSeconds += s.TransferOutSeconds
		t.KernelCycles += s.KernelCycles
		t.BytesIn += s.BytesIn
		t.BytesOut += s.BytesOut
		t.FaultsInjected += s.FaultsInjected
		t.LaunchRetries += s.LaunchRetries
		t.TransferRetries += s.TransferRetries
		t.LaunchTimeouts += s.LaunchTimeouts
		t.Remaps += s.Remaps
		t.Hedges += s.Hedges
		t.DegradedBatches += s.DegradedBatches
		t.TableRepairs += s.TableRepairs
		t.QuarantinedDPUs += s.QuarantinedDPUs
	}
	return t
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stdout, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stdout, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -logfmt %q (want text or json)", format)
	}
}

func main() {
	dpus := flag.Int("dpus", 8, "simulated PIM cores")
	shards := flag.Int("shards", 2, "pipeline shards (dpus must divide evenly)")
	clients := flag.Int("clients", 6, "concurrent client goroutines")
	requests := flag.Int("requests", 24, "requests per client")
	elems := flag.Int("elems", 1024, "elements per request")
	window := flag.Duration("window", 200*time.Microsecond, "batcher coalescing window")
	seed := flag.Int64("seed", 1, "input RNG seed")
	replicas := flag.Int("replicas", 1, "engine replicas; >1 serves through a routed cluster")
	replication := flag.Int("replication", 2, "cluster candidate-set size K per key (with -replicas > 1)")
	listen := flag.String("listen", "", "serve /metrics, /debug/trace and /debug/accuracy on this address (e.g. :9090); exit code 3 when already in use")
	hold := flag.Duration("hold", 0, "keep the HTTP endpoints up this long after the workload (requires -listen)")
	traceDepth := flag.Int("trace", 32, "request traces to retain (0 disables tracing)")
	profile := flag.Bool("profile", false, "modeled-cycle profiling: pim_* metrics plus /debug/profile (flamegraph/pprof) and /debug/heatmap")
	ledger := flag.Bool("ledger", false, "per-tenant cost ledger (/debug/ledger, tenant_* series, exit summary)")
	timeline := flag.Duration("timeline", 0, "windowed metrics store bucket width (/debug/timeline; 0 disables)")
	faults := flag.String("faults", "", "fault-injection plan (e.g. \"seed=42,dpufail=0.05,transfer=0.02\")")
	logfmt := flag.String("logfmt", "text", "log output format: text or json")
	accuracy := flag.Float64("accuracy", 0, "shadow-sample this fraction of every request against the float64 reference (0 disables)")
	sloSpec := flag.String("slo", "", "accuracy SLOs, e.g. \"fn=sigmoid,method=l-lut(i),mae=1e-3;method=cordic,ulp=4096\"")
	accGate := flag.Bool("acc-gate", false, "exit nonzero when a cumulative accuracy SLO is violated at shutdown")
	accOut := flag.String("acc-out", "", "write the final accuracy snapshot to this JSON file")
	flag.Parse()

	log, err := newLogger(*logfmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplserve:", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	slos, err := parseSLOs(*sloSpec)
	if err != nil {
		fatal("bad -slo", "err", err)
	}
	if len(slos) > 0 && *accuracy <= 0 {
		fatal("-slo requires -accuracy > 0")
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels ctx — clients
	// stop submitting, in-flight batches drain through eng.Close, and
	// the summary still prints. A second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tlcfg := transpimlib.TimelineConfig{Enabled: *timeline > 0, BucketWidth: *timeline}
	ecfg := transpimlib.EngineConfig{
		DPUs: *dpus, Shards: *shards, BatchWindow: *window,
		TraceDepth: *traceDepth, Profile: *profile, Faults: *faults,
		Profiler: transpimlib.ProfilerConfig{Enabled: *profile},
		Accuracy: transpimlib.AccuracyConfig{
			Enabled:    *accuracy > 0,
			SampleRate: *accuracy,
			SLOs:       slos,
		},
		Log: log,
	}
	var (
		eng *transpimlib.Engine
		cl  *transpimlib.Cluster
	)
	if *replicas > 1 {
		// The ledger and timeline attach at the cluster layer: replica
		// engines inherit the ledger (so Cluster.Ledger reconciles) while
		// the timeline samples the cluster registry's cluster_*/tenant_*
		// series.
		cl, err = transpimlib.NewCluster(transpimlib.ClusterConfig{
			Replicas:    *replicas,
			Replication: *replication,
			Engine:      ecfg,
			Seed:        uint64(*seed),
			TraceDepth:  *traceDepth,
			Ledger:      *ledger,
			Timeline:    tlcfg,
			Profiler:    transpimlib.ProfilerConfig{Enabled: *profile},
			Log:         log,
		})
		if err != nil {
			fatal("cluster start failed", "err", err)
		}
		defer cl.Close()
	} else {
		ecfg.Ledger = *ledger
		ecfg.Timeline = tlcfg
		eng, err = transpimlib.NewEngine(ecfg)
		if err != nil {
			fatal("engine start failed", "err", err)
		}
		defer eng.Close()
	}
	evaluate := func(tenant string, fn transpimlib.Function, cfg transpimlib.Config, xs []float32) ([]float32, transpimlib.RequestStats, error) {
		if cl != nil {
			return cl.EvaluateBatchAs(tenant, fn, cfg, xs)
		}
		return eng.EvaluateBatchAs(tenant, fn, cfg, xs)
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			code := listenExitCode(err)
			if code == 3 {
				log.Error("listen address already in use (is another tplserve running?)",
					"addr", *listen, "err", err)
			} else {
				log.Error("listen failed", "addr", *listen, "err", err)
			}
			os.Exit(code)
		}
		var handler http.Handler
		if cl != nil {
			handler = clusterHandler(cl)
		} else {
			handler = eng.Observe().Handler()
		}
		srv := &http.Server{Handler: handler}
		go func() {
			if err := srv.Serve(ln); err != http.ErrServerClosed {
				log.Error("http server failed", "err", err)
			}
		}()
		defer srv.Close()
		log.Info("telemetry listening", "addr", ln.Addr().String(),
			"endpoints", "/metrics /debug/trace /debug/accuracy /debug/timeline /debug/ledger /debug/profile /debug/heatmap")
	}

	jobs := mixedWorkload()
	log.Info("workload starting",
		"dpus", *dpus, "shards", *shards, "replicas", *replicas, "clients", *clients,
		"requests_per_client", *requests, "elems", *elems,
		"mix", jobs[0].name+" | "+jobs[1].name+" | "+jobs[2].name,
		"accuracy_sample_rate", *accuracy, "slos", len(slos))

	type obs struct {
		lat   time.Duration
		setup float64
		hit   bool
	}
	all := make([][]obs, *clients)
	var wg sync.WaitGroup
	var failures sync.Map
	start := time.Now()
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for r := 0; r < *requests; r++ {
				if ctx.Err() != nil {
					return // shutdown requested: stop submitting
				}
				j := jobs[(c+r)%len(jobs)]
				xs := make([]float32, *elems)
				for i := range xs {
					xs[i] = -2 + 4*rng.Float32()
				}
				ys, st, err := evaluate(j.tenant(), j.fn, j.cfg, xs)
				if err != nil {
					if ctx.Err() == nil {
						failures.Store(fmt.Sprintf("client %d req %d", c, r), err)
					}
					return
				}
				// Client-side spot check with the shared error math —
				// the same kernel the shadow sampler uses.
				var col stats.Collector
				for i, x := range xs {
					col.Add(ys[i], j.ref(float64(x)))
				}
				if worst := col.Result().MaxAbs; worst > 0.05 {
					failures.Store(fmt.Sprintf("client %d req %d", c, r),
						fmt.Errorf("%s max abs error %.3g", j.name, worst))
					return
				}
				all[c] = append(all[c], obs{st.Latency, st.SetupSeconds, st.CacheHit})
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if ctx.Err() != nil {
		log.Info("shutdown requested, draining in-flight batches")
	}
	// Drain in-flight batches and settle counters before the summary.
	if cl != nil {
		cl.Close()
	} else {
		eng.Close()
	}

	bad := 0
	failures.Range(func(k, v any) bool {
		log.Error("request failed", "where", k, "err", fmt.Sprint(v))
		bad++
		return true
	})
	if bad > 0 {
		os.Exit(1)
	}

	var lats []time.Duration
	var warm int
	for _, co := range all {
		for _, o := range co {
			lats = append(lats, o.lat)
			if o.hit && o.setup == 0 {
				warm++
			}
		}
	}
	var st transpimlib.EngineStats
	if cl != nil {
		st = sumStats(cl.ReplicaStats())
	} else {
		st = eng.Stats()
	}
	log.Info("workload complete",
		"requests", st.Requests, "elements", st.Elements,
		"wall", wall.Round(time.Microsecond).String(),
		"throughput_melem_per_s", float64(st.Elements)/wall.Seconds()/1e6)
	log.Info("latency",
		"p50", percentile(lats, 0.50).String(),
		"p95", percentile(lats, 0.95).String(),
		"max", percentile(lats, 1.0).String())
	log.Info("batching",
		"batches", st.Batches, "requests", st.Requests,
		"coalesced_batches", st.CoalescedBatches)
	specsResident := 0
	if cl != nil {
		specsResident = cl.CachedSpecs()
	} else {
		specsResident = eng.CachedSpecs()
	}
	log.Info("table cache",
		"specs_resident", specsResident, "hits", st.CacheHits,
		"misses", st.CacheMisses, "fully_warm_requests", warm)
	log.Info("modeled stage costs",
		"setup_s", st.SetupSeconds, "transfer_in_s", st.TransferInSeconds,
		"compute_s", st.ComputeSeconds, "kernel_kcycles", st.KernelCycles/1000,
		"transfer_out_s", st.TransferOutSeconds)
	log.Info("bytes moved", "host_to_pim", st.BytesIn, "pim_to_host", st.BytesOut)
	if *ledger {
		var snap transpimlib.LedgerSnapshot
		if cl != nil {
			snap = cl.Ledger()
		} else {
			snap = eng.Ledger()
		}
		log.Info("cost ledger", "rows", len(snap.Rows))
		logLedger(log, snap)
	}
	if st.RequestErrors > 0 {
		log.Warn("request errors", "count", st.RequestErrors)
	}
	if *faults != "" {
		log.Info("reliability",
			"faults_injected", st.FaultsInjected, "launch_retries", st.LaunchRetries,
			"transfer_retries", st.TransferRetries, "timeouts", st.LaunchTimeouts)
		log.Info("recovery",
			"remaps", st.Remaps, "hedges", st.Hedges,
			"degraded_batches", st.DegradedBatches, "table_repairs", st.TableRepairs,
			"quarantined_dpus", st.QuarantinedDPUs)
		if eng != nil {
			var quarantined, probation int
			for _, h := range eng.Health() {
				if h.Quarantined {
					quarantined++
				}
				if h.Probation {
					probation++
				}
			}
			log.Info("health",
				"quarantined", quarantined, "probation", probation,
				"fault_events", len(eng.FaultEvents()))
		}
	}
	if cl != nil {
		cs := cl.Stats()
		log.Info("cluster routing",
			"requests", cs.Requests, "shed", cs.Shed,
			"shed_quota", cs.ShedQuota, "shed_queue", cs.ShedQueue,
			"failovers", cs.Failovers, "spills", cs.Spills,
			"degraded", cs.Degraded, "quarantined_replicas", cs.QuarantinedReplicas)
		for i, h := range cl.Health() {
			log.Info("replica",
				"replica", i, "routed", cs.Routed[i], "errors", h.Errors,
				"quarantined", h.Quarantined, "probation", h.Probation)
		}
		if *accuracy > 0 {
			log.Info("per-replica accuracy snapshots served at /replica/<i>/debug/accuracy")
		}
	}
	if eng != nil {
		if snap, ok := eng.Accuracy(); ok {
			log.Info("accuracy",
				"samples", snap.Samples, "series", len(snap.Series),
				"slo_breaches", snap.Breaches, "drift_events", snap.Drifts,
				"out_of_range", snap.OutOfRange)
			for _, s := range snap.Series {
				log.Info("accuracy series",
					"fn", s.Key.Function, "method", s.Key.Method, "tenant", s.Key.Tenant,
					"samples", s.Samples, "mae", s.Cumulative.MeanAbs,
					"max_abs", s.Cumulative.MaxAbs, "max_ulp", s.Cumulative.MaxULP)
			}
			if *accOut != "" {
				data, err := json.MarshalIndent(snap, "", "  ")
				if err == nil {
					err = os.WriteFile(*accOut, append(data, '\n'), 0o644)
				}
				if err != nil {
					fatal("accuracy snapshot write failed", "path", *accOut, "err", err)
				}
				log.Info("accuracy snapshot written", "path", *accOut)
			}
		}
		if tr, ok := eng.TraceLast(); ok {
			root := tr.Root
			log.Info("last trace",
				"id", tr.ID, "name", root.Name,
				"wall", root.Wall().Round(time.Microsecond).String(),
				"spans", countSpans(root))
		}
	}

	// The CI accuracy gate: cumulative per-series errors checked
	// against every configured SLO, independent of window boundaries.
	if *accGate {
		if cl != nil {
			log.Warn("-acc-gate is per-engine; cluster mode skips the gate — read /replica/<i>/debug/accuracy")
		} else if v := eng.AccuracyViolations(); len(v) > 0 {
			for _, x := range v {
				log.Error("accuracy gate violation",
					"fn", x.Key.Function, "method", x.Key.Method, "tenant", x.Key.Tenant,
					"metric", x.Metric, "got", x.Got,
					"max_mae", x.SLO.MaxMAE, "max_ulp", x.SLO.MaxULP)
			}
			os.Exit(1)
		} else {
			log.Info("accuracy gate passed", "slos", len(slos))
		}
	}

	if *listen != "" && *hold > 0 && ctx.Err() == nil {
		log.Info("holding telemetry endpoints", "for", hold.String())
		select {
		case <-ctx.Done():
		case <-time.After(*hold):
		}
	}
}

func countSpans(s *transpimlib.Span) int {
	n := 1
	for _, c := range s.Child {
		n += countSpans(c)
	}
	return n
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ { // insertion sort: n is tiny
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
