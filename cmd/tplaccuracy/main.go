// Command tplaccuracy prints the full accuracy picture: RMSE, maximum
// absolute error and maximum ULP error for every supported
// (function, method, interpolation) combination at a chosen size, the
// per-function generalization of §4.2's sine-focused analysis.
//
// Usage:
//
//	tplaccuracy                  # default size knobs
//	tplaccuracy -size 14 -n 65536
//	tplaccuracy -fn exp          # one function only
//	tplaccuracy -json            # machine-readable rows
//
// -json emits one JSON document: an array of rows whose error objects
// share their shape (and their stats.Deviation error math) with the
// serving engine's online /debug/accuracy snapshot, so offline and
// online numbers are directly comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

var (
	flagSize = flag.Int("size", 12, "LUT size knob (SizeLog2)")
	flagIter = flag.Int("iter", 30, "CORDIC iterations")
	flagDeg  = flag.Int("deg", 11, "polynomial baseline degree")
	flagN    = flag.Int("n", 1<<14, "inputs per function")
	flagFn   = flag.String("fn", "", "restrict to one function (empty = all)")
	flagJSON = flag.Bool("json", false, "emit JSON rows instead of the table")
)

// row is one measured (function, method) combination. Errors reuses
// stats.Errors' JSON shape — the same object /debug/accuracy embeds
// per series.
type row struct {
	Function     string       `json:"function"`
	Method       string       `json:"method"` // "l-lut", "l-lut(i)", …
	Errors       stats.Errors `json:"errors"`
	CyclesPerElt float64      `json:"cycles_per_elem"`
}

func main() {
	flag.Parse()
	fns := core.Functions()
	if *flagFn != "" {
		fn, err := core.ParseFunction(*flagFn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fns = []core.Function{fn}
	}
	var rows []row
	if !*flagJSON {
		fmt.Printf("%-8s %-22s %12s %12s %12s %10s %10s\n",
			"fn", "method", "rmse", "rel-rmse", "max-abs", "max-ulp", "cyc/elem")
	}
	for _, fn := range fns {
		lo, hi := fn.Domain()
		inputs := stats.RandomInputs(lo, hi, *flagN, 0xACC)
		for _, m := range core.Methods() {
			if !m.Supports(fn) {
				continue
			}
			for _, interp := range []bool{false, true} {
				if interp && !m.SupportsInterp() {
					continue
				}
				p := core.Params{
					Method:     m,
					Interp:     interp,
					SizeLog2:   *flagSize,
					Iterations: *flagIter,
					Degree:     *flagDeg,
					Placement:  pimsim.InWRAM,
				}
				pt, err := core.MeasureOperator(fn, p, inputs)
				if err != nil {
					// Scratchpad exhausted: retry in the DRAM bank.
					p.Placement = pimsim.InMRAM
					pt, err = core.MeasureOperator(fn, p, inputs)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "%-6s %-22s ERROR: %v\n", fn, p.Label(), err)
					continue
				}
				label := m.String()
				if interp {
					label += "(i)"
				}
				if *flagJSON {
					rows = append(rows, row{
						Function:     fn.String(),
						Method:       label,
						Errors:       pt.Errors,
						CyclesPerElt: pt.CyclesPerElem,
					})
					continue
				}
				fmt.Printf("%-8s %-22s %12.3g %12.3g %12.3g %10.1f %10.1f\n",
					fn, label, pt.Errors.RMSE, pt.Errors.RelRMSE, pt.Errors.MaxAbs, pt.Errors.MaxULP, pt.CyclesPerElem)
			}
		}
		if !*flagJSON {
			fmt.Println()
		}
	}
	if *flagJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
