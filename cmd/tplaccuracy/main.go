// Command tplaccuracy prints the full accuracy picture: RMSE, maximum
// absolute error and maximum ULP error for every supported
// (function, method, interpolation) combination at a chosen size, the
// per-function generalization of §4.2's sine-focused analysis.
//
// Usage:
//
//	tplaccuracy                  # default size knobs
//	tplaccuracy -size 14 -n 65536
//	tplaccuracy -fn exp          # one function only
package main

import (
	"flag"
	"fmt"
	"os"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

var (
	flagSize = flag.Int("size", 12, "LUT size knob (SizeLog2)")
	flagIter = flag.Int("iter", 30, "CORDIC iterations")
	flagDeg  = flag.Int("deg", 11, "polynomial baseline degree")
	flagN    = flag.Int("n", 1<<14, "inputs per function")
	flagFn   = flag.String("fn", "", "restrict to one function (empty = all)")
)

func main() {
	flag.Parse()
	fns := core.Functions()
	if *flagFn != "" {
		fn, err := core.ParseFunction(*flagFn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fns = []core.Function{fn}
	}
	fmt.Printf("%-8s %-22s %12s %12s %12s %10s %10s\n",
		"fn", "method", "rmse", "rel-rmse", "max-abs", "max-ulp", "cyc/elem")
	for _, fn := range fns {
		lo, hi := fn.Domain()
		inputs := stats.RandomInputs(lo, hi, *flagN, 0xACC)
		for _, m := range core.Methods() {
			if !m.Supports(fn) {
				continue
			}
			for _, interp := range []bool{false, true} {
				if interp && !m.SupportsInterp() {
					continue
				}
				p := core.Params{
					Method:     m,
					Interp:     interp,
					SizeLog2:   *flagSize,
					Iterations: *flagIter,
					Degree:     *flagDeg,
					Placement:  pimsim.InWRAM,
				}
				pt, err := core.MeasureOperator(fn, p, inputs)
				if err != nil {
					// Scratchpad exhausted: retry in the DRAM bank.
					p.Placement = pimsim.InMRAM
					pt, err = core.MeasureOperator(fn, p, inputs)
				}
				if err != nil {
					fmt.Printf("%-6s %-22s ERROR: %v\n", fn, p.Label(), err)
					continue
				}
				label := m.String()
				if interp {
					label += "(i)"
				}
				fmt.Printf("%-8s %-22s %12.3g %12.3g %12.3g %10.1f %10.1f\n",
					fn, label, pt.Errors.RMSE, pt.Errors.RelRMSE, pt.Errors.MaxAbs, pt.Errors.MaxULP, pt.CyclesPerElem)
			}
		}
		fmt.Println()
	}
}
