// Command tplbench regenerates the paper's microbenchmark content:
// Table 1 (CORDIC constants), Table 2 (method × function support),
// Figure 5 (execution cycles vs. RMSE), Figure 6 (setup time vs.
// RMSE), Figure 7 (memory consumption vs. RMSE), Figure 8 (range
// reduction/extension cycles), and the Key Takeaway checks.
//
// Usage:
//
//	tplbench -all                 # everything, sine as the Fig. 5-7 function
//	tplbench -fig5 -fn tanh       # one figure for another function
//	tplbench -fig5 -csv           # machine-readable series
//	tplbench -json -fn all        # one JSON document with every metric
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"transpimlib/internal/cordic"
	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/faultsim"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/rangered"
	"transpimlib/internal/stats"
)

var (
	flagAll     = flag.Bool("all", false, "run every table, figure and takeaway check")
	flagTable1  = flag.Bool("table1", false, "print Table 1 (CORDIC constants)")
	flagTable2  = flag.Bool("table2", false, "print Table 2 (support matrix)")
	flagFig4    = flag.Bool("fig4", false, "Figure 4: LUT entry-density patterns")
	flagFig5    = flag.Bool("fig5", false, "Figure 5: execution cycles vs RMSE")
	flagFig6    = flag.Bool("fig6", false, "Figure 6: setup time vs RMSE")
	flagFig7    = flag.Bool("fig7", false, "Figure 7: memory consumption vs RMSE")
	flagFig8    = flag.Bool("fig8", false, "Figure 8: range reduction/extension cycles")
	flagTK      = flag.Bool("takeaways", false, "check Key Takeaways 1-4")
	flagFn      = flag.String("fn", "sin", "function for the Fig. 5-7 sweeps (or \"all\")")
	flagN       = flag.Int("n", 1<<16, "number of microbenchmark inputs (paper: 2^16)")
	flagCSV     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flagJSON    = flag.Bool("json", false, "emit one JSON document with the sweep metrics (cycles/element, RMSE, setup time, table bytes) plus Fig. 8 cycles")
	flagProfile = flag.String("profile", "upmem", "machine profile: upmem | hbm-pim | fp32")
	flagFaults  = flag.String("faults", "", "fault-injection plan for the -json engine snapshot (faultsim syntax)")
)

func main() {
	flag.Parse()
	if !(*flagAll || *flagTable1 || *flagTable2 || *flagFig4 || *flagFig5 || *flagFig6 || *flagFig7 || *flagFig8 || *flagTK) {
		*flagAll = true
	}
	var fns []core.Function
	if *flagFn == "all" {
		fns = core.Functions()
	} else {
		fn, err := core.ParseFunction(*flagFn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fns = []core.Function{fn}
	}
	cost, ok := pimsim.Profiles()[*flagProfile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q (upmem, hbm-pim, fp32)\n", *flagProfile)
		os.Exit(2)
	}
	profileCost = cost
	if *flagJSON {
		emitJSON(fns, *flagN)
		return
	}
	if *flagProfile != "upmem" {
		fmt.Printf("machine profile: %s\n\n", *flagProfile)
	}

	if *flagAll || *flagTable1 {
		table1()
	}
	if *flagAll || *flagTable2 {
		fmt.Println("== Table 2: implementation methods and supported functions ==")
		fmt.Println(core.SupportMatrix())
	}
	if *flagAll || *flagFig4 {
		figure4()
	}
	for _, fn := range fns {
		var points []core.Point
		if *flagAll || *flagFig5 || *flagFig6 || *flagFig7 {
			points = sweepAll(fn, *flagN)
		}
		if *flagAll || *flagFig5 {
			figure(points, fn, 5, "execution cycles per element on one PIM core",
				func(p core.Point) float64 { return p.CyclesPerElem }, "%9.1f")
		}
		if *flagAll || *flagFig6 {
			figure(points, fn, 6, "setup time on the host CPU (seconds)",
				func(p core.Point) float64 { return p.SetupSeconds }, "%9.3g")
		}
		if *flagAll || *flagFig7 {
			figure(points, fn, 7, "memory consumption per PIM core (bytes)",
				func(p core.Point) float64 { return float64(p.TableBytes) }, "%9.0f")
		}
	}
	if *flagAll || *flagFig8 {
		figure8()
	}
	if *flagAll || *flagTK {
		takeaways(*flagN)
	}
}

func table1() {
	fmt.Println("== Table 1: CORDIC rotation matrices, angles, and stretching factors ==")
	fmt.Printf("%-12s %-22s %-16s %s\n", "mode", "phi_i", "1/K (32 iters)", "functions")
	rows := []struct {
		mode cordic.Mode
		phi  string
		fns  string
	}{
		{cordic.Circular, "atan(2^-i)", "sin, cos, tan, arctan"},
		{cordic.Hyperbolic, "atanh(2^-i)", "sinh, cosh, tanh, exp, log, sqrt, atanh"},
		{cordic.Linear, "2^-i", "multiplication, division"},
	}
	for _, r := range rows {
		tb := cordic.NewTables(r.mode, 32)
		fmt.Printf("%-12s %-22s %-16.10f %s\n", r.mode, r.phi, 1/tb.GainF, r.fns)
	}
	fmt.Println()
}

var profileCost pimsim.CostModel

func sweepAll(fn core.Function, n int) []core.Point {
	lo, hi := fn.Domain()
	inputs := stats.RandomInputs(lo, hi, n, 0x7161)
	var out []core.Point
	for _, sc := range core.Fig5Curves(fn) {
		sc.Cost = profileCost
		out = append(out, sc.Run(inputs)...)
	}
	return out
}

func curveName(p core.Point) string {
	name := p.Par.Method.String()
	if p.Par.Interp {
		name += "(i)"
	}
	return name + " " + p.Par.Placement.String()
}

func figure(points []core.Point, fn core.Function, num int, ylabel string, y func(core.Point) float64, format string) {
	fmt.Printf("== Figure %d: %s vs RMSE — %s ==\n", num, ylabel, fn)
	groups := map[string][]core.Point{}
	var names []string
	for _, p := range points {
		k := curveName(p)
		if _, seen := groups[k]; !seen {
			names = append(names, k)
		}
		groups[k] = append(groups[k], p)
	}
	sort.Strings(names)
	if *flagCSV {
		fmt.Println("curve,size,rmse,value")
		for _, name := range names {
			for _, p := range groups[name] {
				fmt.Printf("%s,%s,%.6g,%.6g\n", name, sizeOf(p), p.Errors.RMSE, y(p))
			}
		}
		fmt.Println()
		return
	}
	for _, name := range names {
		fmt.Printf("  %s\n", name)
		for _, p := range groups[name] {
			fmt.Printf("    size=%-6s rmse=%10.3g  "+format+"\n", sizeOf(p), p.Errors.RMSE, y(p))
		}
	}
	fmt.Println()
}

func sizeOf(p core.Point) string {
	switch p.Par.Method {
	case core.CORDIC, core.CORDICLUT:
		return fmt.Sprintf("it%d", p.Par.Iterations)
	case core.Poly:
		return fmt.Sprintf("d%d", p.Par.Degree)
	default:
		return fmt.Sprintf("2^%d", p.Par.SizeLog2)
	}
}

// fig8Cycles measures the Figure 8 range reduction/extension costs,
// returned as fn → cycles per element.
func fig8Cycles() map[string]uint64 {
	cost := func(f func(*pimsim.Ctx)) uint64 {
		d := pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
		ctx := d.NewCtx()
		const reps = 256
		for i := 0; i < reps; i++ {
			f(ctx)
		}
		return d.Cycles() / reps
	}
	return map[string]uint64{
		"sin": cost(func(c *pimsim.Ctx) {
			r := rangered.To2Pi(c, 123.456)
			theta, q := rangered.FoldQuadrant(c, r)
			rangered.ApplySinQuadrant(c, theta, theta, q)
		}),
		"exp": cost(func(c *pimsim.Ctx) {
			r, k := rangered.SplitExp(c, 7.7)
			rangered.JoinExp(c, r, k)
		}),
		"log": cost(func(c *pimsim.Ctx) {
			m, e := rangered.SplitLog(c, 1234.5)
			rangered.JoinLog(c, m, e)
		}),
		"sqrt": cost(func(c *pimsim.Ctx) {
			m, h := rangered.SplitSqrt(c, 1234.5)
			rangered.JoinSqrt(c, m, h)
		}),
	}
}

func figure8() {
	fmt.Println("== Figure 8: execution cycles per element for range reduction/extension ==")
	cycles := fig8Cycles()
	sin, exp, log, sqrt := cycles["sin"], cycles["exp"], cycles["log"], cycles["sqrt"]
	if *flagCSV {
		fmt.Println("function,cycles")
		fmt.Printf("sin,%d\nexp,%d\nlog,%d\nsqrt,%d\n\n", sin, exp, log, sqrt)
		return
	}
	fmt.Printf("  %-6s %8s\n", "fn", "cycles")
	fmt.Printf("  %-6s %8d   (2π reduction + quadrant fold + fix-up)\n", "sin", sin)
	fmt.Printf("  %-6s %8d   (Cody-Waite split + ldexp join)\n", "exp", exp)
	fmt.Printf("  %-6s %8d   (frexp split + e·ln2 join)\n", "log", log)
	fmt.Printf("  %-6s %8d   (frexp split + parity + ldexp join)\n", "sqrt", sqrt)
	fmt.Println()
}

func takeaways(n int) {
	fmt.Println("== Key Takeaway checks ==")
	pass := func(id, claim string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s: %s\n         %s\n", status, id, claim, detail)
	}
	sinInputs := stats.RandomInputs(0, 2*math.Pi, n, 1)

	// KT1: interpolated L-LUT offers the best performance/accuracy
	// trade-off among the multiplying methods.
	li, _ := core.MeasureOperator(core.Sin, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}, sinInputs)
	mi, _ := core.MeasureOperator(core.Sin, core.Params{Method: core.MLUT, Interp: true, SizeLog2: 12}, sinInputs)
	fi, _ := core.MeasureOperator(core.Sin, core.Params{Method: core.LLUTFixed, Interp: true, SizeLog2: 12}, sinInputs)
	pass("KT1", "interpolated L-LUT beats interpolated M-LUT at equal accuracy",
		li.CyclesPerElem < mi.CyclesPerElem && li.Errors.RMSE < 2*mi.Errors.RMSE,
		fmt.Sprintf("L-LUTi %.0f cyc (rmse %.2g) vs M-LUTi %.0f cyc (rmse %.2g); fixed L-LUTi %.0f cyc",
			li.CyclesPerElem, li.Errors.RMSE, mi.CyclesPerElem, mi.Errors.RMSE, fi.CyclesPerElem))

	// KT2: CORDIC preferable for kernels with few transcendental ops.
	cord, _ := core.MeasureOperator(core.Sin, core.Params{Method: core.CORDIC, Iterations: 30}, sinInputs)
	lut14, _ := core.MeasureOperator(core.Sin, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 14, Placement: pimsim.InMRAM}, sinInputs)
	dc := cord.CyclesPerElem - lut14.CyclesPerElem
	ds := lut14.SetupSeconds - cord.SetupSeconds
	breakEven := ds / (dc / pimsim.DefaultClockHz)
	pass("KT2", "CORDIC amortizes better below a small op count",
		dc > 0 && ds > 0,
		fmt.Sprintf("L-LUT setup pays off after ~%.0f sine ops (paper: ~40)", breakEven))

	// KT3: interpolated L-LUT needs far less memory than non-interp at
	// equal accuracy; CORDIC memory is (near-)constant.
	ni, _ := core.MeasureOperator(core.Sin, core.Params{Method: core.LLUT, SizeLog2: 16, Placement: pimsim.InMRAM}, sinInputs)
	pass("KT3", "interpolation reaches non-interp accuracy with far less memory",
		li.Errors.RMSE < ni.Errors.RMSE && li.TableBytes*4 < ni.TableBytes,
		fmt.Sprintf("L-LUTi 2^12: %d B rmse %.2g vs L-LUT 2^16: %d B rmse %.2g; CORDIC-30: %d B",
			li.TableBytes, li.Errors.RMSE, ni.TableBytes, ni.Errors.RMSE, cord.TableBytes))

	// KT4: D-LUT/DL-LUT are ~2× faster than wide-range interpolated
	// L-LUT sine, at similar accuracy, for tanh/GELU.
	wideSin, _ := core.MeasureOperator(core.Sin,
		core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12, WideRange: true},
		stats.RandomInputs(-20, 20, n, 2))
	tanhIn := stats.RandomInputs(-7.9, 7.9, n, 3)
	dl, _ := core.MeasureOperator(core.Tanh, core.Params{Method: core.DLLUT, Interp: true, SizeLog2: 12}, tanhIn)
	ratio := wideSin.CyclesPerElem / dl.CyclesPerElem
	pass("KT4", "DL-LUT tanh ≈2× faster than wide-range L-LUTi sine at similar accuracy",
		ratio > 1.5 && ratio < 4 && dl.Errors.RMSE < 10*wideSin.Errors.RMSE,
		fmt.Sprintf("speedup %.2f× (tanh DL-LUTi %.0f cyc rmse %.2g; sine %.0f cyc rmse %.2g)",
			ratio, dl.CyclesPerElem, dl.Errors.RMSE, wideSin.CyclesPerElem, wideSin.Errors.RMSE))

	// §4.2.4: tangent costs 2-3× sine.
	tan, _ := core.MeasureOperator(core.Tan, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}, sinInputs)
	pass("§4.2.4", "tangent ≈2-3× the cycles of sine (sin+cos+fdiv)",
		tan.CyclesPerElem > 1.3*li.CyclesPerElem,
		fmt.Sprintf("tan %.0f cyc vs sin %.0f cyc (%.2f×)", tan.CyclesPerElem, li.CyclesPerElem,
			tan.CyclesPerElem/li.CyclesPerElem))
	fmt.Println()
}

// jsonPoint is one sweep measurement in -json output.
type jsonPoint struct {
	Curve         string  `json:"curve"`
	Size          string  `json:"size"`
	RMSE          float64 `json:"rmse"`
	CyclesPerElem float64 `json:"cycles_per_elem"`
	SetupSeconds  float64 `json:"setup_seconds"`
	TableBytes    int     `json:"table_bytes"`
	// HostElemsPerSec is the wall-clock EvalBatch throughput of the
	// fused host mirror — the serving engine's compute ceiling. Host-
	// dependent; tracked for trajectory, not comparable across machines.
	HostElemsPerSec float64 `json:"host_elems_per_sec"`
	// ClassCycles and ClassOps break the sweep's modeled kernel cost
	// into per-instruction-class totals (the profiler's classes);
	// classes the kernel never issued are omitted.
	ClassCycles map[string]uint64 `json:"class_cycles,omitempty"`
	ClassOps    map[string]uint64 `json:"class_ops,omitempty"`
}

// classMaps converts the sweep counters into name-keyed cycle and op
// maps, dropping classes with no activity.
func classMaps(c pimsim.Counters) (cycles, ops map[string]uint64) {
	for cl := pimsim.OpClass(0); cl < pimsim.NumOpClasses(); cl++ {
		if c.Ops[cl] == 0 && c.Cycles[cl] == 0 {
			continue
		}
		if cycles == nil {
			cycles, ops = map[string]uint64{}, map[string]uint64{}
		}
		cycles[cl.String()] = c.Cycles[cl]
		ops[cl.String()] = c.Ops[cl]
	}
	return cycles, ops
}

type jsonReport struct {
	Profile   string                 `json:"profile"`
	Inputs    int                    `json:"inputs"`
	Functions map[string][]jsonPoint `json:"functions"`
	Fig8      map[string]uint64      `json:"fig8_cycles"`
	Engine    *jsonEngine            `json:"engine,omitempty"`
}

// jsonEngine is the serving-engine snapshot in -json output: a short
// mixed workload (cold round + warm round) through internal/engine,
// with the final telemetry counters — so bench sweeps capture
// cache-hit ratios and per-stage totals, not just per-method cycles.
type jsonEngine struct {
	DPUs          int          `json:"dpus"`
	Shards        int          `json:"shards"`
	Rounds        int          `json:"rounds"`
	CacheHitRatio float64      `json:"cache_hit_ratio"`
	Stats         engine.Stats `json:"stats"`
}

// engineSnapshot replays sigmoid/GELU/exp requests for two rounds —
// the first pays every table build, the second is fully warm — and
// returns the engine-wide counter snapshot.
func engineSnapshot(n int) *jsonEngine {
	const dpus, shards, rounds = 8, 2, 2
	var plan *faultsim.Plan
	if *flagFaults != "" {
		p, err := faultsim.ParsePlan(*flagFaults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "engine snapshot:", err)
			return nil
		}
		plan = &p
	}
	eng, err := engine.New(engine.Config{DPUs: dpus, Shards: shards, Cost: profileCost, Faults: plan})
	if err != nil {
		fmt.Fprintln(os.Stderr, "engine snapshot:", err)
		return nil
	}
	defer eng.Close()
	specs := []struct {
		fn core.Function
		p  core.Params
	}{
		{core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}},
		{core.GELU, core.Params{Method: core.DLLUT, Interp: true, SizeLog2: 12}},
		{core.Exp, core.Params{Method: core.LLUTFixed, Interp: true, SizeLog2: 12}},
	}
	xs := stats.RandomInputs(-2, 2, n, 0x7e1e)
	for round := 0; round < rounds; round++ {
		for _, sp := range specs {
			if _, _, err := eng.EvaluateBatch(sp.fn, sp.p, xs); err != nil {
				fmt.Fprintln(os.Stderr, "engine snapshot:", err)
				return nil
			}
		}
	}
	st := eng.Stats()
	ratio := 0.0
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		ratio = float64(st.CacheHits) / float64(lookups)
	}
	return &jsonEngine{DPUs: dpus, Shards: shards, Rounds: rounds, CacheHitRatio: ratio, Stats: st}
}

// emitJSON runs the Fig. 5-7 sweeps for the requested functions plus
// the Fig. 8 range-reduction measurements and prints one JSON document
// — the machine-readable view tracked across revisions.
func emitJSON(fns []core.Function, n int) {
	rep := jsonReport{
		Profile:   *flagProfile,
		Inputs:    n,
		Functions: make(map[string][]jsonPoint),
		Fig8:      fig8Cycles(),
		Engine:    engineSnapshot(n),
	}
	for _, fn := range fns {
		for _, p := range sweepAll(fn, n) {
			classCycles, classOps := classMaps(p.Counters)
			rep.Functions[fn.String()] = append(rep.Functions[fn.String()], jsonPoint{
				Curve:           curveName(p),
				Size:            sizeOf(p),
				RMSE:            p.Errors.RMSE,
				CyclesPerElem:   p.CyclesPerElem,
				SetupSeconds:    p.SetupSeconds,
				TableBytes:      p.TableBytes,
				HostElemsPerSec: p.HostElemsPerSec,
				ClassCycles:     classCycles,
				ClassOps:        classOps,
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// figure4 renders the entry-density comparison of Figure 4: where each
// LUT family places its entries across an input interval. Each row is
// a histogram of entries per equal-width bucket; the M-LUT and L-LUT
// are uniform (with the L-LUT constrained to power-of-two density),
// the D-LUT follows the density of the floats (geometric, dense near
// zero, with the near-zero gap), and the DL-LUT patches that gap with
// an L-LUT.
func figure4() {
	fmt.Println("== Figure 4: lookup-table entry density over [0, 5] (entries per 0.25-wide bucket) ==")
	const lo, hi = 0.0, 5.0
	const buckets = 20
	hist := func(name string, positions []float64) {
		counts := make([]int, buckets)
		total := 0
		for _, p := range positions {
			if p < lo || p >= hi {
				continue
			}
			counts[int((p-lo)/(hi-lo)*buckets)]++
			total++
		}
		fmt.Printf("  %-22s", name)
		for _, c := range counts {
			fmt.Printf("%4d", c)
		}
		fmt.Printf("   (%d entries)\n", total)
	}

	// M-LUT: arbitrary density k (here 12.8/unit over [0,5], Fig. 4(a)).
	var m []float64
	for i := 0; i < 64; i++ {
		m = append(m, lo+float64(i)/12.8)
	}
	hist("m-lut (k=12.8)", m)

	// L-LUT: power-of-two density 2^4 = 16/unit (Fig. 4(b)).
	var l []float64
	for i := 0; ; i++ {
		p := lo + float64(i)/16
		if p >= hi {
			break
		}
		l = append(l, p)
	}
	hist("l-lut (k=2^4)", l)

	// D-LUT: entries at float-pattern positions 2^e·(1+j/2^m), denser
	// toward zero, nothing below 2^minExp (Fig. 4(c)).
	var d []float64
	for e := -3; e < 3; e++ {
		for j := 0; j < 16; j++ {
			d = append(d, math.Ldexp(1+float64(j)/16, e))
		}
	}
	hist("d-lut (m=4, e≥-3)", d)

	// DL-LUT: the same D-LUT plus an L-LUT filling [0, 2^minExp)
	// (Fig. 4(d)).
	dl := append([]float64{}, d...)
	for i := 0; i < 16; i++ {
		dl = append(dl, float64(i)/128)
	}
	hist("dl-lut (d + l near 0)", dl)
	fmt.Println()
}
