// Command tpltrace replays a serving workload against a traced
// engine and writes the retained request span trees as a Chrome
// trace_event JSON file, loadable in about:tracing or Perfetto
// (ui.perfetto.dev). Each request becomes one process row (pid =
// trace id); within it, spans land on the shard's track (tid), so the
// enqueue → transfer-in → setup → kernel → transfer-out pipeline and
// the double-buffer overlap between consecutive batches are visible
// on a real timeline.
//
// With -replicas N > 1 the workload runs through a routed cluster
// instead: each trace is then one connected tree — the cluster root
// span, its placement-ladder attempts, and the serving replica's
// pipeline spans grafted underneath — and the Chrome encoding lays
// the rows out per process ("cluster", "replica/<i>").
//
// Usage:
//
//	tpltrace [-o trace.json] [-dpus 8] [-shards 2] [-clients 4]
//	         [-requests 8] [-elems 2048] [-window 200us] [-seed 1]
//	         [-replicas 1] [-json] [-summary]
//
// -json writes the raw span-tree JSON (the /debug/trace form) instead
// of the Chrome encoding; -summary prints a per-stage wall/modeled
// table to stderr.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"transpimlib"
	"transpimlib/internal/telemetry"
)

func main() {
	out := flag.String("o", "trace.json", "output file (- for stdout)")
	dpus := flag.Int("dpus", 8, "simulated PIM cores")
	shards := flag.Int("shards", 2, "pipeline shards")
	clients := flag.Int("clients", 4, "concurrent client goroutines")
	requests := flag.Int("requests", 8, "requests per client")
	elems := flag.Int("elems", 2048, "elements per request")
	window := flag.Duration("window", 200*time.Microsecond, "batcher coalescing window")
	seed := flag.Int64("seed", 1, "input RNG seed")
	replicas := flag.Int("replicas", 1, "engine replicas; >1 traces routed cluster requests end to end")
	rawJSON := flag.Bool("json", false, "emit the span-tree JSON instead of the Chrome encoding")
	summary := flag.Bool("summary", true, "print a per-stage summary to stderr")
	flag.Parse()

	total := *clients * *requests
	ecfg := transpimlib.EngineConfig{
		DPUs: *dpus, Shards: *shards, BatchWindow: *window,
		TraceDepth: total, Profile: true,
	}
	var (
		eng *transpimlib.Engine
		cl  *transpimlib.Cluster
		err error
	)
	if *replicas > 1 {
		cl, err = transpimlib.NewCluster(transpimlib.ClusterConfig{
			Replicas: *replicas, Engine: ecfg,
			Seed: uint64(*seed), TraceDepth: total,
		})
	} else {
		eng, err = transpimlib.NewEngine(ecfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpltrace:", err)
		os.Exit(1)
	}
	defer func() {
		if cl != nil {
			cl.Close()
		} else {
			eng.Close()
		}
	}()

	jobs := []struct {
		fn  transpimlib.Function
		cfg transpimlib.Config
	}{
		{transpimlib.Sigmoid, transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true, SizeLog2: 12}},
		{transpimlib.GELU, transpimlib.Config{Method: transpimlib.DLLUT, Interpolated: true, SizeLog2: 12}},
		{transpimlib.Exp, transpimlib.Config{Method: transpimlib.LLUTFixed, Interpolated: true, SizeLog2: 12}},
	}

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for r := 0; r < *requests; r++ {
				j := jobs[(c+r)%len(jobs)]
				xs := make([]float32, *elems)
				for i := range xs {
					xs[i] = -2 + 4*rng.Float32()
				}
				var err error
				if cl != nil {
					_, _, err = cl.EvaluateBatch(j.fn, j.cfg, xs)
				} else {
					_, _, err = eng.EvaluateBatch(j.fn, j.cfg, xs)
				}
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", c, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintln(os.Stderr, "tpltrace:", err)
		os.Exit(1)
	}

	var traces []*transpimlib.Trace
	tel := func() *transpimlib.Telemetry {
		if cl != nil {
			return cl.Observe()
		}
		return eng.Observe()
	}()
	if cl != nil {
		traces = cl.Traces()
	} else {
		traces = eng.Traces()
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpltrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *rawJSON {
		err = tel.Tracer.WriteJSON(w)
	} else {
		err = telemetry.WriteChromeTrace(w, traces)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpltrace:", err)
		os.Exit(1)
	}
	if *out != "-" {
		format := "chrome trace_event"
		if *rawJSON {
			format = "span-tree JSON"
		}
		fmt.Printf("tpltrace: wrote %d request traces (%s) to %s\n", len(traces), format, *out)
	}

	if *summary {
		printSummary(traces)
	}
}

// printSummary aggregates wall-clock and modeled seconds per stage
// across all traces — the live-system analogue of the paper's
// per-stage breakdowns.
func printSummary(traces []*transpimlib.Trace) {
	type agg struct {
		wall    time.Duration
		modeled float64
		n       int
	}
	stages := map[string]*agg{}
	order := []string{}
	var walk func(s *transpimlib.Span)
	walk = func(s *transpimlib.Span) {
		name := s.Name
		if len(name) > 5 && name[:5] == "batch" {
			name = "batch"
		}
		if len(name) > 7 && name[:7] == "attempt" {
			name = "attempt"
		}
		a, ok := stages[name]
		if !ok {
			a = &agg{}
			stages[name] = a
			order = append(order, name)
		}
		a.wall += s.Wall()
		a.modeled += s.Modeled
		a.n++
		for _, c := range s.Child {
			walk(c)
		}
	}
	for _, tr := range traces {
		walk(tr.Root)
	}
	fmt.Fprintf(os.Stderr, "\n%-14s %6s %14s %14s\n", "stage", "spans", "wall", "modeled")
	for _, name := range order {
		a := stages[name]
		fmt.Fprintf(os.Stderr, "%-14s %6d %14v %13.3gs\n",
			name, a.n, a.wall.Round(time.Microsecond), a.modeled)
	}
}
