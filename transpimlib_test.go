package transpimlib

import (
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/pimsim"
)

func TestNewDefaultCORDIC(t *testing.T) {
	lib, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Sinf(1.0); math.Abs(float64(got)-math.Sin(1)) > 1e-6 {
		t.Fatalf("Sinf(1) = %v", got)
	}
	if lib.Cycles() == 0 {
		t.Fatal("evaluation must charge cycles")
	}
}

func TestNewCompilesAllSupported(t *testing.T) {
	lib, err := New(Config{Method: LLUT, Interpolated: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Functions() {
		if !lib.Compiled(f) {
			t.Errorf("%v should be compiled for L-LUT", f)
		}
	}
	// CORDIC skips GELU.
	lib2, err := New(Config{Method: CORDIC})
	if err != nil {
		t.Fatal(err)
	}
	if lib2.Compiled(GELU) {
		t.Error("CORDIC lib must not contain GELU")
	}
}

func TestNewExplicitFunctionList(t *testing.T) {
	lib, err := New(Config{Method: LLUT}, Sin, Sin, Exp)
	if err != nil {
		t.Fatal(err)
	}
	if !lib.Compiled(Sin) || !lib.Compiled(Exp) || lib.Compiled(Log) {
		t.Fatal("explicit function list not honored")
	}
}

func TestNewRejectsUnsupportedPair(t *testing.T) {
	if _, err := New(Config{Method: CORDIC}, GELU); err == nil {
		t.Fatal("CORDIC+GELU must fail")
	}
	if _, err := New(Config{Method: DLUT}, Sin); err == nil {
		t.Fatal("DLUT+Sin must fail")
	}
}

func TestScalarAPIAccuracy(t *testing.T) {
	// Ten functions of 2^12-entry tables outgrow the 64-KB scratchpad,
	// so a full library lives in the DRAM bank (§4.2.1 observation 4).
	lib, err := New(Config{Method: LLUT, Interpolated: true, SizeLog2: 12, Placement: InMRAM})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float32
		want float64
		tol  float64
	}{
		{"sin", lib.Sinf(1.0472), math.Sin(1.0472), 1e-5},
		{"cos", lib.Cosf(2.5), math.Cos(2.5), 1e-5},
		{"tan", lib.Tanf(0.7), math.Tan(0.7), 1e-4},
		{"sinh", lib.Sinhf(1.3), math.Sinh(1.3), 1e-5},
		{"cosh", lib.Coshf(-1.1), math.Cosh(-1.1), 1e-5},
		{"tanh", lib.Tanhf(0.9), math.Tanh(0.9), 1e-5},
		{"exp", lib.Expf(3.7), math.Exp(3.7), 1e-4},
		{"log", lib.Logf(42), math.Log(42), 1e-5},
		{"sqrt", lib.Sqrtf(17), math.Sqrt(17), 1e-4},
		{"gelu", lib.Geluf(0.5), 0.5 * 0.5 * (1 + math.Erf(0.5/math.Sqrt2)), 1e-5},
		{"atan", lib.Atanf(2.5), math.Atan(2.5), 1e-5},
		{"sigmoid", lib.Sigmoidf(-1.5), 1 / (1 + math.Exp(1.5)), 1e-5},
	}
	for _, c := range checks {
		if math.Abs(float64(c.got)-c.want) > c.tol {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestWideRangeConfig(t *testing.T) {
	lib, err := New(Config{Method: LLUT, Interpolated: true, SizeLog2: 12, WideRange: true}, Sin)
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Sinf(123.456); math.Abs(float64(got)-math.Sin(123.456)) > 1e-3 {
		t.Fatalf("wide-range Sinf(123.456) = %v, want %v", got, math.Sin(123.456))
	}
}

func TestEvalPanicsOnMissingFunction(t *testing.T) {
	lib, err := New(Config{Method: LLUT}, Sin)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Eval of uncompiled function must panic")
		}
	}()
	lib.Expf(1)
}

func TestCycleAccounting(t *testing.T) {
	lib, err := New(Config{Method: LLUT, Interpolated: true}, Sin)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Cycles() != 0 {
		t.Fatal("setup must not count as execution cycles")
	}
	lib.Sinf(1)
	one := lib.Cycles()
	lib.Sinf(2)
	if lib.Cycles() != 2*one {
		t.Fatalf("two identical calls should cost 2× one call: %d vs %d", lib.Cycles(), 2*one)
	}
	lib.ResetCycles()
	if lib.Cycles() != 0 {
		t.Fatal("ResetCycles failed")
	}
}

func TestSetupMetadata(t *testing.T) {
	lib, err := New(Config{Method: LLUT, SizeLog2: 12}, Sin, Exp)
	if err != nil {
		t.Fatal(err)
	}
	if lib.SetupSeconds() <= 0 || lib.TableBytes() <= 0 {
		t.Fatalf("setup metadata missing: %v s, %d B", lib.SetupSeconds(), lib.TableBytes())
	}
}

func TestEvalSlice(t *testing.T) {
	lib, err := New(Config{Method: LLUT, Interpolated: true, SizeLog2: 12}, Sin)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float32, 100)
	for i := range xs {
		xs[i] = float32(i) * 0.06
	}
	out := make([]float32, len(xs))
	lib.EvalSlice(Sin, xs, out)
	for i, x := range xs {
		if math.Abs(float64(out[i])-math.Sin(float64(x))) > 1e-5 {
			t.Fatalf("EvalSlice[%d] = %v, want sin(%v)", i, out[i], x)
		}
	}
}

func TestBringYourOwnPIM(t *testing.T) {
	dpu := pimsim.NewDPU(7, pimsim.Default(), 16)
	lib, err := New(Config{Method: LLUT, PIM: dpu}, Sin)
	if err != nil {
		t.Fatal(err)
	}
	if lib.PIM() != dpu {
		t.Fatal("library must use the supplied core")
	}
	lib.Sinf(1)
	if dpu.Cycles() == 0 {
		t.Fatal("cycles must accrue on the supplied core")
	}
}

func TestSupportsAndMatrix(t *testing.T) {
	if !Supports(LLUT, GELU) || Supports(CORDIC, GELU) {
		t.Fatal("Supports disagrees with Table 2")
	}
	if SupportMatrix() == "" {
		t.Fatal("SupportMatrix empty")
	}
}

func TestPropLLUTSinBounded(t *testing.T) {
	lib, err := New(Config{Method: LLUT, Interpolated: true, SizeLog2: 12}, Sin)
	if err != nil {
		t.Fatal(err)
	}
	f := func(u float32) bool {
		x := float32(math.Mod(math.Abs(float64(u)), 2*math.Pi))
		y := float64(lib.Sinf(x))
		return y >= -1.0001 && y <= 1.0001 && math.Abs(y-math.Sin(float64(x))) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFixedMethodThroughPublicAPI(t *testing.T) {
	lib, err := New(Config{Method: LLUTFixed, Interpolated: true, SizeLog2: 12}, Sin, Tanh)
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Sinf(2.2); math.Abs(float64(got)-math.Sin(2.2)) > 1e-5 {
		t.Fatalf("fixed Sinf = %v", got)
	}
	if got := lib.Tanhf(-3.3); math.Abs(float64(got)-math.Tanh(-3.3)) > 1e-5 {
		t.Fatalf("fixed Tanhf = %v", got)
	}
}

func TestPowf(t *testing.T) {
	lib, err := New(Config{Method: LLUT, Interpolated: true, SizeLog2: 12}, Exp, Log)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, y, want float64 }{
		{2, 10, 1024},
		{9, 0.5, 3},
		{5, 0, 1},
		{10, -1, 0.1},
		{1.5, 3.7, math.Pow(1.5, 3.7)},
	}
	for _, c := range cases {
		got := float64(lib.Powf(float32(c.x), float32(c.y)))
		if math.Abs(got-c.want)/math.Max(c.want, 1e-9) > 1e-4 {
			t.Errorf("Powf(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}
