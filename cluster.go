package transpimlib

import (
	"fmt"
	"log/slog"

	"transpimlib/internal/cluster"
	"transpimlib/internal/engine"
)

// ErrOverloaded is the cluster's typed load-shedding error: the
// request was refused before any work happened, either because the
// tenant's token bucket was empty or because every candidate replica's
// backlog exceeded ClusterConfig.MaxQueue. Detect it with errors.Is
// and back off before retrying.
var ErrOverloaded = cluster.ErrOverloaded

// ErrClusterClosed is returned by cluster submit paths after Close.
var ErrClusterClosed = cluster.ErrClusterClosed

// TenantQuota is one tenant's admission token bucket, denominated in
// elements: a request for n elements consumes n tokens. Rate refills
// per second; Burst caps the bucket (default: one second of Rate).
type TenantQuota = cluster.Quota

// ClusterStats is the cluster-wide routing counter snapshot: requests,
// sheds by reason, failovers, spills off the primary, degraded serves,
// and the per-replica routed counts.
type ClusterStats = cluster.Stats

// ReplicaHealth is one replica's row of the cluster health scoreboard.
type ReplicaHealth = cluster.ReplicaHealth

// ClusterConfig configures a replicated serving cluster. The zero
// value (with Replicas defaulted to 1) behaves exactly like a single
// Engine: no quotas, no backlog bound, no faults — the differential
// tests pin bit-identity with the single-engine path.
type ClusterConfig struct {
	// Replicas is the engine replica count N (default 1, max 64). Each
	// replica is a full Engine with its own simulated PIM system.
	Replicas int
	// Engine is the per-replica engine template.
	Engine EngineConfig
	// ReplicaFaults overrides the template's fault plan for specific
	// replicas (index → faultsim plan string) — the knob the cluster
	// smoke tests use to fail one replica out of N. An entry with an
	// empty string disables injection on that replica.
	ReplicaFaults map[int]string
	// Replication is K, the size of each key's candidate set on the
	// consistent-hash ring: the replicas its tables may become resident
	// on and the fallback targets for least-loaded placement. Default
	// min(2, Replicas), capped at 16.
	Replication int
	// VirtualNodes is the number of ring points per replica (default
	// 64); more points smooth the key distribution.
	VirtualNodes int
	// Seed perturbs the ring and key hashes (default 1). Identical
	// seeds and request sequences yield identical placements.
	Seed uint64
	// Quotas are per-tenant admission token buckets; nil disables quota
	// admission. DefaultQuota, when non-nil, applies to tenants absent
	// from Quotas.
	Quotas       map[string]TenantQuota
	DefaultQuota *TenantQuota
	// MaxQueue, when > 0, sheds a request (ErrOverloaded) when every
	// healthy candidate replica's batcher backlog is at or above it.
	MaxQueue int
	// TraceDepth retains the span trees of the last N routed requests,
	// readable via TraceLast/Traces and served at the cluster handler's
	// /debug/trace. Each trace is one connected tree: the cluster root
	// span, a child per placement-ladder step (attempts, sheds,
	// failovers), and the serving replica's engine pipeline spans
	// grafted underneath. Replica engines whose template leaves
	// TraceDepth unset inherit it, along with a "replica/<i>" process
	// name for Chrome exports. Default 0: tracing disabled.
	TraceDepth int
	// Ledger enables cluster-wide per-tenant cost accounting: each
	// replica engine charges served requests to (tenant, function,
	// method) rows and the router charges sheds and failovers;
	// Cluster.Ledger() merges everything into one snapshot whose cycle
	// totals reconcile ±0 with the simulators'. Off by default.
	Ledger bool
	// Timeline enables the cluster registry's windowed metrics store,
	// served at the cluster handler's /debug/timeline. It covers the
	// cluster_* and tenant_* series; per-replica engines keep their own
	// stores if their template enables one. Timeline.Enabled false (the
	// default) disables it.
	Timeline TimelineConfig
	// Profiler enables the modeled-cycle profiler on every replica
	// (all-or-nothing, like Ledger). The cluster handler serves the
	// merged /debug/profile and a per-replica /debug/heatmap;
	// Cluster.ProfileSnapshot merges the replica profiles. Off by
	// default.
	Profiler ProfilerConfig
	// Health tunes replica-granularity quarantine: QuarantineAfter
	// consecutive replica failures (errors or host-mirror degrades)
	// quarantine it, ProbationAfter requests later it is re-admitted on
	// probation, ProbationSuccesses clean serves clear it. Zero values
	// pick defaults (3 / 64 / 2).
	Health ReliabilityConfig
	// Log receives replica quarantine and failover events (and is also
	// passed to each replica engine unless Engine.Log is set).
	Log *slog.Logger
}

// Cluster is a replicated serving front end: N engine replicas behind
// a consistent-hash router with least-loaded fallback, per-tenant
// admission control, load shedding, and replica-granularity failover.
// Safe for concurrent use.
type Cluster struct {
	c *cluster.Cluster
}

// NewCluster builds and starts a cluster of cfg.Replicas engines.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	n := cfg.Replicas
	if n <= 0 {
		n = 1
	}
	ecfg := cfg.Engine
	if ecfg.Log == nil {
		ecfg.Log = cfg.Log
	}
	engines := make([]engine.Config, n)
	for i := range engines {
		per := ecfg
		if plan, ok := cfg.ReplicaFaults[i]; ok {
			per.Faults = plan
		}
		icfg, err := per.internal()
		if err != nil {
			return nil, fmt.Errorf("transpimlib: replica %d: %w", i, err)
		}
		engines[i] = icfg
	}
	c, err := cluster.New(cluster.Config{
		Engines:      engines,
		TraceDepth:   cfg.TraceDepth,
		Ledger:       cfg.Ledger,
		Timeline:     cfg.Timeline,
		Profiler:     cfg.Profiler,
		Replication:  cfg.Replication,
		VirtualNodes: cfg.VirtualNodes,
		Seed:         cfg.Seed,
		Quotas:       cfg.Quotas,
		DefaultQuota: cfg.DefaultQuota,
		MaxQueue:     cfg.MaxQueue,
		Health:       cfg.Health,
		Log:          cfg.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("transpimlib: %w", err)
	}
	return &Cluster{c: c}, nil
}

// EvaluateBatch routes fn over xs through the cluster with the
// anonymous tenant. See EvaluateBatchAs.
func (c *Cluster) EvaluateBatch(fn Function, spec Config, xs []float32) ([]float32, RequestStats, error) {
	return c.EvaluateBatchAs("", fn, spec, xs)
}

// EvaluateBatchAs routes one tenant-tagged request: admission (quota
// shed with ErrOverloaded), consistent-hash placement with
// least-loaded fallback and backlog shedding, execution on the chosen
// replica, and failover — a replica that fails is penalized on the
// cluster health tracker and the request re-placed among the
// survivors. Results are bit-identical regardless of which replica
// serves (the engine differential contract).
func (c *Cluster) EvaluateBatchAs(tenant string, fn Function, spec Config, xs []float32) ([]float32, RequestStats, error) {
	if spec.PIM != nil {
		return nil, RequestStats{}, fmt.Errorf("transpimlib: a Cluster owns its PIM systems; Config.PIM must be nil")
	}
	return c.c.EvaluateBatchTenant(tenant, fn, spec.params(), xs)
}

// Prewarm eagerly builds the spec's tables on every replica in the
// (function, method, tenant) key's candidate set, so the first real
// request hits a warm setup cache wherever the router places it.
func (c *Cluster) Prewarm(fn Function, spec Config, tenant string) error {
	if spec.PIM != nil {
		return fmt.Errorf("transpimlib: a Cluster owns its PIM systems; Config.PIM must be nil")
	}
	return c.c.Prewarm(fn, spec.params(), tenant)
}

// Replicas returns the replica count N.
func (c *Cluster) Replicas() int { return c.c.Replicas() }

// Stats snapshots the cluster-wide routing counters.
func (c *Cluster) Stats() ClusterStats { return c.c.Stats() }

// ReplicaStats snapshots each replica's engine-wide counters.
func (c *Cluster) ReplicaStats() []EngineStats { return c.c.ReplicaStats() }

// CachedSpecs sums the replicas' resident table configurations; with
// replication one spec can count on several replicas.
func (c *Cluster) CachedSpecs() int { return c.c.CachedSpecs() }

// Health returns the replica health scoreboard: lifetime errors,
// consecutive-failure streaks, and quarantine/probation state.
func (c *Cluster) Health() []ReplicaHealth { return c.c.Health() }

// TraceLast returns the span tree of the most recently routed request
// — cluster placement spans with the serving replica's pipeline spans
// grafted underneath — or false when tracing is disabled
// (TraceDepth 0) or no request has completed yet.
func (c *Cluster) TraceLast() (*Trace, bool) { return c.c.TraceLast() }

// Traces returns the retained request traces, oldest first (nil when
// tracing is disabled).
func (c *Cluster) Traces() []*Trace { return c.c.Traces() }

// Ledger merges the router's cost rows (sheds, failovers) with every
// replica engine's ledger into one cluster-wide per-tenant snapshot
// (empty when ClusterConfig.Ledger is off).
func (c *Cluster) Ledger() LedgerSnapshot { return c.c.Ledger() }

// ProfileSnapshot merges every replica's modeled-cycle profile into
// one cluster-wide view; ok is false when ClusterConfig.Profiler is
// off.
func (c *Cluster) ProfileSnapshot() (CycleProfile, bool) { return c.c.ProfileSnapshot() }

// Observe returns the cluster's telemetry handle: the registry behind
// Stats with the cluster_* series (per-replica routed counts, queue
// depths, health gauges). Per-replica engine telemetry is reachable
// through ReplicaObserve.
func (c *Cluster) Observe() *Telemetry { return c.c.Observe() }

// ReplicaObserve returns replica i's engine telemetry handle (nil for
// an out-of-range index).
func (c *Cluster) ReplicaObserve(i int) *Telemetry { return c.c.ReplicaObserve(i) }

// Close drains and stops every replica.
func (c *Cluster) Close() { c.c.Close() }
