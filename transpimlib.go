package transpimlib

import (
	"fmt"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
)

// Function identifies a supported function. The zero value is Sin.
type Function = core.Function

// The functions TransPimLib supports (Table 2 of the paper).
const (
	Sin  = core.Sin
	Cos  = core.Cos
	Tan  = core.Tan
	Sinh = core.Sinh
	Cosh = core.Cosh
	Tanh = core.Tanh
	Exp  = core.Exp
	Log  = core.Log
	Sqrt = core.Sqrt
	GELU = core.GELU
	// Extensions beyond the paper's Table 2 (see internal/core):
	Atan    = core.Atan
	Sigmoid = core.Sigmoid
)

// Functions lists every supported function.
func Functions() []Function { return core.Functions() }

// Method identifies an implementation method (§3 of the paper). The
// zero value is CORDIC.
type Method = core.Method

// The implementation methods.
const (
	CORDIC    = core.CORDIC    // shift-add iterations
	CORDICLUT = core.CORDICLUT // LUT head + CORDIC tail
	MLUT      = core.MLUT      // multiplication-addressed fuzzy LUT
	LLUT      = core.LLUT      // ldexp-addressed fuzzy LUT
	LLUTFixed = core.LLUTFixed // Q3.28 fixed-point L-LUT
	DLUT      = core.DLUT      // direct float-bits-addressed LUT
	DLLUT     = core.DLLUT     // L-LUT near zero + D-LUT beyond
	Poly      = core.Poly      // polynomial-approximation baseline
)

// Methods lists every implementation method.
func Methods() []Method { return core.Methods() }

// Placement selects which PIM memory holds lookup tables.
type Placement = pimsim.Placement

// Table placements: the 64-KB scratchpad or the core's DRAM bank.
const (
	InWRAM = pimsim.InWRAM
	InMRAM = pimsim.InMRAM
)

// Supports reports whether method m implements function f (Table 2).
func Supports(m Method, f Function) bool { return m.Supports(f) }

// SupportMatrix renders the method × function support table.
func SupportMatrix() string { return core.SupportMatrix() }

// Config selects the method configuration a Lib compiles with. The
// zero value is a high-accuracy pure CORDIC.
type Config struct {
	Method       Method
	Interpolated bool      // LUT interpolation variant
	SizeLog2     int       // LUT density knob (default 10)
	Iterations   int       // CORDIC iterations (default 30)
	HeadBits     int       // CORDIC+LUT head density (default 8)
	Degree       int       // Poly baseline degree (default 9)
	Placement    Placement // table placement (default WRAM)
	WideRange    bool      // prepend 2π reduction to trig functions

	// PIM optionally supplies the simulated core to compile onto; a
	// fresh single core is created otherwise.
	PIM *pimsim.DPU
}

func (c Config) params() core.Params {
	return core.Params{
		Method:     c.Method,
		Interp:     c.Interpolated,
		SizeLog2:   c.SizeLog2,
		Iterations: c.Iterations,
		HeadBits:   c.HeadBits,
		Degree:     c.Degree,
		Placement:  c.Placement,
		WideRange:  c.WideRange,
	}
}

// Lib is a TransPimLib instance: a set of functions compiled for one
// method configuration onto one simulated PIM core. The host-side
// setup (table generation and transfer) happens in New; the per-call
// device execution happens in the Sinf-style methods.
//
// A Lib is not safe for concurrent use: it models a single PIM core.
type Lib struct {
	cfg Config
	dpu *pimsim.DPU
	ctx *pimsim.Ctx
	ops map[Function]*core.Operator

	setupSeconds float64
	tableBytes   int
}

// New compiles the given functions (all functions the method supports,
// when none are named) with the configuration. It returns an error for
// unsupported (method, function) pairs or when tables do not fit the
// selected memory.
func New(cfg Config, fns ...Function) (*Lib, error) {
	dpu := cfg.PIM
	if dpu == nil {
		dpu = pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
	}
	if len(fns) == 0 {
		for _, f := range Functions() {
			if cfg.Method.Supports(f) {
				fns = append(fns, f)
			}
		}
	}
	l := &Lib{cfg: cfg, dpu: dpu, ctx: dpu.NewCtx(), ops: make(map[Function]*core.Operator)}
	for _, f := range fns {
		if _, dup := l.ops[f]; dup {
			continue
		}
		op, err := core.Build(f, cfg.params(), dpu)
		if err != nil {
			return nil, fmt.Errorf("transpimlib: %w", err)
		}
		l.ops[f] = op
		l.setupSeconds += op.SetupSeconds()
		l.tableBytes += op.TableBytes()
	}
	dpu.ResetCycles() // setup is not execution
	return l, nil
}

// PIM returns the simulated core the library is compiled onto.
func (l *Lib) PIM() *pimsim.DPU { return l.dpu }

// Cycles returns the PIM core's cycle counter: total modeled execution
// cycles of all calls since New (or the last ResetCycles).
func (l *Lib) Cycles() uint64 { return l.dpu.Cycles() }

// ResetCycles zeroes the cycle counter.
func (l *Lib) ResetCycles() { l.dpu.ResetCycles() }

// SetupSeconds returns the host-side setup time: measured table
// generation plus modeled Host→PIM transfer (§4.1.1).
func (l *Lib) SetupSeconds() float64 { return l.setupSeconds }

// TableBytes returns the PIM memory consumed by tables and constants.
func (l *Lib) TableBytes() int { return l.tableBytes }

// Eval computes fn(x) on the PIM core. It panics if fn was not
// compiled into the library; use Compiled to check.
func (l *Lib) Eval(fn Function, x float32) float32 {
	op, ok := l.ops[fn]
	if !ok {
		panic(fmt.Sprintf("transpimlib: %v was not compiled into this Lib", fn))
	}
	return op.Eval(l.ctx, x)
}

// Compiled reports whether fn is available in this library instance.
func (l *Lib) Compiled(fn Function) bool { _, ok := l.ops[fn]; return ok }

// EvalSlice computes fn over a whole slice, writing into out (which
// must be at least as long as xs) — the microbenchmark access pattern:
// one streamed chunk DMA, then element-wise evaluation.
func (l *Lib) EvalSlice(fn Function, xs, out []float32) {
	op, ok := l.ops[fn]
	if !ok {
		panic(fmt.Sprintf("transpimlib: %v was not compiled into this Lib", fn))
	}
	l.ctx.ChargeDMA(4 * len(xs))
	if op.HasFastPath() {
		op.EvalBatch(l.ctx, xs, out)
		// Bulk-charge the loop control the per-element path pays: one
		// Charge(2) — one OpCtrl op, two cycles — per element.
		var ops pimsim.Counters
		ops.Ops[pimsim.OpCtrl] = uint64(len(xs))
		ops.Cycles[pimsim.OpCtrl] = 2 * uint64(len(xs))
		l.ctx.ChargeOps(ops)
	} else {
		for i, x := range xs {
			out[i] = op.Eval(l.ctx, x)
			l.ctx.Charge(2)
		}
	}
	l.ctx.ChargeDMA(4 * len(xs))
}

// The paper-style scalar API (float sinf(float x), §2.2.3).

// Sinf returns sin(x), x in [0, 2π] (any x with Config.WideRange).
func (l *Lib) Sinf(x float32) float32 { return l.Eval(Sin, x) }

// Cosf returns cos(x), x in [0, 2π] (any x with Config.WideRange).
func (l *Lib) Cosf(x float32) float32 { return l.Eval(Cos, x) }

// Tanf returns tan(x), x in [0, 2π] (any x with Config.WideRange).
func (l *Lib) Tanf(x float32) float32 { return l.Eval(Tan, x) }

// Sinhf returns sinh(x) for x in [-2, 2].
func (l *Lib) Sinhf(x float32) float32 { return l.Eval(Sinh, x) }

// Coshf returns cosh(x) for x in [-2, 2].
func (l *Lib) Coshf(x float32) float32 { return l.Eval(Cosh, x) }

// Tanhf returns tanh(x) for x in [-7.9, 7.9].
func (l *Lib) Tanhf(x float32) float32 { return l.Eval(Tanh, x) }

// Expf returns e^x over the full float range (range extension built in).
func (l *Lib) Expf(x float32) float32 { return l.Eval(Exp, x) }

// Logf returns ln(x) for positive x (range extension built in).
func (l *Lib) Logf(x float32) float32 { return l.Eval(Log, x) }

// Sqrtf returns √x for non-negative x (range extension built in).
func (l *Lib) Sqrtf(x float32) float32 { return l.Eval(Sqrt, x) }

// Geluf returns GELU(x) for x in [-7.9, 7.9].
func (l *Lib) Geluf(x float32) float32 { return l.Eval(GELU, x) }

// Atanf returns arctan(x) for x in [-7.9, 7.9] (extension function).
func (l *Lib) Atanf(x float32) float32 { return l.Eval(Atan, x) }

// Sigmoidf returns 1/(1+e^{−x}) for x in [-7.9, 7.9] (extension
// function).
func (l *Lib) Sigmoidf(x float32) float32 { return l.Eval(Sigmoid, x) }

// Powf returns x^y for positive x, composed as e^{y·ln x} from the
// library's exponential and logarithm (both must be compiled in) plus
// one float multiply — general exponentiation in the sense of §2.2.3's
// exponent/mantissa identities.
func (l *Lib) Powf(x, y float32) float32 {
	lg := l.Eval(Log, x)
	l.ctx.Charge(0)
	return l.Eval(Exp, l.ctx.FMul(y, lg))
}
