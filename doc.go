// Package transpimlib is a Go reproduction of TransPimLib (Item et
// al., ISPASS 2023): a library of CORDIC-based and LUT-based methods
// for transcendental and other hard-to-calculate functions on
// general-purpose processing-in-memory systems.
//
// The original library runs on real UPMEM hardware; this reproduction
// runs on a built-in cycle-level PIM-system simulator (a generic
// UPMEM-like machine: in-order multithreaded 32-bit cores beside each
// DRAM bank, a 64-KB scratchpad, software floating point). Every
// evaluation both returns the mathematical result and charges the
// cycles the equivalent PIM instruction sequence would cost, so the
// performance/accuracy/memory trade-offs of the paper are measurable
// from ordinary Go code.
//
// # One-shot use
//
// Basic use mirrors the paper's host-setup + device-call split:
//
//	lib, err := transpimlib.New(transpimlib.Config{
//		Method:       transpimlib.LLUT,
//		Interpolated: true,
//	}, transpimlib.Sin, transpimlib.Exp)
//	...
//	y := lib.Sinf(1.0472)        // computed "on" the PIM core
//	cycles := lib.Cycles()       // the hardware-counter view
//	setup := lib.SetupSeconds()  // host-side table generation + transfer
//
// # Serving
//
// For sustained traffic, Engine is a long-lived runtime over a
// multi-core PIM system: it caches table setup per (function, method,
// size, placement) so repeated requests skip the setup cost, coalesces
// concurrent small requests into batches sharded across core groups,
// and pipelines host→PIM transfer against kernel execution:
//
//	eng, err := transpimlib.NewEngine(transpimlib.EngineConfig{DPUs: 8})
//	...
//	defer eng.Close()
//	ys, stats, err := eng.EvaluateBatch(transpimlib.Sigmoid,
//		transpimlib.Config{Method: transpimlib.LLUT, Interpolated: true}, xs)
//
// EvaluateBatch is safe for concurrent use; each call reports its
// wall-clock latency and modeled per-stage costs.
package transpimlib
