package transpimlib

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary, asserting it
// exits cleanly and prints the landmark lines its demo promises. Skip
// with -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cases := []struct {
		dir      string
		args     []string
		landmark string
	}{
		{"./examples/quickstart", nil, "PIM cycles"},
		{"./examples/blackscholes", nil, "total PIM cycles"},
		{"./examples/activation", nil, "softmax outputs sum to 1.000000"},
		{"./examples/methodpicker", []string{"-ops", "25"}, "recommendation:"},
		{"./examples/raytrace", nil, "rays"},
		{"./examples/logistic", nil, "boundary angle"},
		{"./examples/serving", nil, "engine totals:"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", append([]string{"run", c.dir}, c.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.landmark) {
				t.Fatalf("%s output missing %q:\n%s", c.dir, c.landmark, out)
			}
		})
	}
}
