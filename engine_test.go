package transpimlib

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestEngineEvaluateBatch(t *testing.T) {
	// One shard: table residency is per shard, so a single-shard engine
	// makes the hit/miss sequence deterministic.
	eng, err := NewEngine(EngineConfig{DPUs: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	xs := make([]float32, 257)
	for i := range xs {
		xs[i] = -6 + 12*float32(i)/float32(len(xs)-1)
	}
	spec := Config{Method: LLUT, Interpolated: true, SizeLog2: 12}

	ys, st, err := eng.EvaluateBatch(Sigmoid, spec, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ys) != len(xs) {
		t.Fatalf("got %d outputs for %d inputs", len(ys), len(xs))
	}
	for i, x := range xs {
		want := 1 / (1 + math.Exp(-float64(x)))
		if math.Abs(float64(ys[i])-want) > 1e-2 {
			t.Fatalf("sigmoid(%v) = %v, want ≈ %v", x, ys[i], want)
		}
	}
	if st.CacheHit {
		t.Fatal("first request must be a cache miss")
	}
	if st.SetupSeconds <= 0 {
		t.Fatal("cold request must charge setup time")
	}

	_, st2, err := eng.EvaluateBatch(Sigmoid, spec, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.SetupSeconds != 0 {
		t.Fatalf("second request must hit the cache with zero setup, got hit=%v setup=%v",
			st2.CacheHit, st2.SetupSeconds)
	}
	if eng.CachedSpecs() != 1 {
		t.Fatalf("CachedSpecs = %d, want 1", eng.CachedSpecs())
	}
	if s := eng.Stats(); s.Requests != 2 || s.Elements != uint64(2*len(xs)) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEngineRejectsForeignPIM(t *testing.T) {
	eng, err := NewEngine(EngineConfig{DPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	lib, err := New(Config{Method: LLUT, Interpolated: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.EvaluateBatch(Sin, Config{Method: LLUT, Interpolated: true, PIM: lib.PIM()}, nil)
	if err == nil {
		t.Fatal("EvaluateBatch must reject Config.PIM")
	}
}

func TestEngineConcurrentPublicAPI(t *testing.T) {
	eng, err := NewEngine(EngineConfig{DPUs: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	specs := []struct {
		fn   Function
		cfg  Config
		want func(float64) float64
	}{
		{Sigmoid, Config{Method: LLUT, Interpolated: true, SizeLog2: 12},
			func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }},
		{Exp, Config{Method: LLUTFixed, Interpolated: true, SizeLog2: 12},
			math.Exp},
		{Tanh, Config{Method: DLLUT, Interpolated: true, SizeLog2: 12},
			math.Tanh},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := specs[g%len(specs)]
			xs := make([]float32, 96)
			for i := range xs {
				xs[i] = -2 + 4*float32(i)/float32(len(xs))
			}
			ys, _, err := eng.EvaluateBatch(sp.fn, sp.cfg, xs)
			if err != nil {
				errs <- err
				return
			}
			for i, x := range xs {
				if math.Abs(float64(ys[i])-sp.want(float64(x))) > 5e-2 {
					errs <- fmt.Errorf("%v(%v) = %v, want ≈ %v", sp.fn, x, ys[i], sp.want(float64(x)))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
