// Benchmark harness: one testing.B benchmark per table and figure of
// the paper. Wall-clock numbers measure the simulator on the host; the
// reproduction's actual results are the custom metrics each benchmark
// reports — pim-cycles/elem (Figs. 5, 8), setup-s (Fig. 6),
// table-bytes (Fig. 7) and modeled-s (Fig. 9) — which are
// host-independent.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// One figure:
//
//	go test -bench=Fig5 -benchmem
package transpimlib

import (
	"testing"

	"transpimlib/internal/cordic"
	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/rangered"
	"transpimlib/internal/stats"
	"transpimlib/internal/workloads"
)

// --- Table 1: CORDIC constant generation ---

func BenchmarkTable1CORDICTables(b *testing.B) {
	for _, mode := range []cordic.Mode{cordic.Circular, cordic.Hyperbolic, cordic.Linear} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cordic.NewTables(mode, 32)
			}
		})
	}
}

// --- Table 2: support matrix ---

func BenchmarkTable2SupportMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.SupportMatrix() == "" {
			b.Fatal("empty matrix")
		}
	}
}

// --- Figure 5: execution cycles per element, sine ---

func fig5Cases() []core.Params {
	return []core.Params{
		{Method: core.CORDIC, Iterations: 30},
		{Method: core.CORDICLUT, Iterations: 22, HeadBits: 10},
		{Method: core.MLUT, SizeLog2: 12},
		{Method: core.MLUT, Interp: true, SizeLog2: 12},
		{Method: core.LLUT, SizeLog2: 12},
		{Method: core.LLUT, Interp: true, SizeLog2: 12},
		{Method: core.LLUT, Interp: true, SizeLog2: 12, Placement: pimsim.InMRAM},
		{Method: core.LLUTFixed, SizeLog2: 12},
		{Method: core.LLUTFixed, Interp: true, SizeLog2: 12},
		{Method: core.Poly, Degree: 9},
	}
}

func BenchmarkFig5SineCycles(b *testing.B) {
	lo, hi := core.Sin.Domain()
	inputs := stats.RandomInputs(lo, hi, 4096, 5)
	for _, p := range fig5Cases() {
		b.Run(p.Label(), func(b *testing.B) {
			dpu := pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
			op, err := core.Build(core.Sin, p, dpu)
			if err != nil {
				b.Fatal(err)
			}
			dpu.ResetCycles()
			ctx := dpu.NewCtx()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Eval(ctx, inputs[i%len(inputs)])
			}
			b.ReportMetric(float64(dpu.Cycles())/float64(b.N), "pim-cycles/op")
		})
	}
}

// --- Figure 6: setup time ---

func BenchmarkFig6SineSetup(b *testing.B) {
	for _, p := range fig5Cases() {
		b.Run(p.Label(), func(b *testing.B) {
			var setup float64
			for i := 0; i < b.N; i++ {
				dpu := pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
				op, err := core.Build(core.Sin, p, dpu)
				if err != nil {
					b.Fatal(err)
				}
				setup = op.SetupSeconds()
			}
			b.ReportMetric(setup, "setup-s")
		})
	}
}

// --- Figure 7: memory consumption ---

func BenchmarkFig7SineMemory(b *testing.B) {
	for _, p := range fig5Cases() {
		b.Run(p.Label(), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				dpu := pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
				op, err := core.Build(core.Sin, p, dpu)
				if err != nil {
					b.Fatal(err)
				}
				bytes = op.TableBytes()
			}
			b.ReportMetric(float64(bytes), "table-bytes")
		})
	}
}

// --- Figure 8: range reduction/extension ---

func BenchmarkFig8RangeReduction(b *testing.B) {
	cases := []struct {
		name string
		f    func(*pimsim.Ctx)
	}{
		{"sin", func(c *pimsim.Ctx) {
			r := rangered.To2Pi(c, 123.456)
			theta, q := rangered.FoldQuadrant(c, r)
			rangered.ApplySinQuadrant(c, theta, theta, q)
		}},
		{"exp", func(c *pimsim.Ctx) {
			r, k := rangered.SplitExp(c, 7.7)
			rangered.JoinExp(c, r, k)
		}},
		{"log", func(c *pimsim.Ctx) {
			m, e := rangered.SplitLog(c, 1234.5)
			rangered.JoinLog(c, m, e)
		}},
		{"sqrt", func(c *pimsim.Ctx) {
			m, h := rangered.SplitSqrt(c, 1234.5)
			rangered.JoinSqrt(c, m, h)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			dpu := pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
			ctx := dpu.NewCtx()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.f(ctx)
			}
			b.ReportMetric(float64(dpu.Cycles())/float64(b.N), "pim-cycles/op")
		})
	}
}

// --- Figure 9: full workloads (scaled geometry, full per-core load) ---

const benchDPUs = 4

func BenchmarkFig9Blackscholes(b *testing.B) {
	opts := workloads.GenOptions(benchDPUs*3930, 1)
	kits := []workloads.Kit{
		workloads.PolyBaselineKit(),
		workloads.MLUTIKit(10),
		workloads.LLUTIKit(12),
		workloads.FixedLLUTIKit(12),
	}
	for _, kit := range kits {
		b.Run(kit.Name, func(b *testing.B) {
			var r workloads.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = workloads.BlackscholesPIM(benchDPUs, opts, kit)
				if err != nil {
					b.Fatal(err)
				}
			}
			full := workloads.ProjectFull(r, workloads.FullBlackscholesElements)
			b.ReportMetric(full.Seconds(), "modeled-s")
			b.ReportMetric(full.Errors.RMSE, "rmse")
		})
	}
	b.Run("cpu-32t-model", func(b *testing.B) {
		var r workloads.Result
		for i := 0; i < b.N; i++ {
			r = workloads.BlackscholesCPUModeled(workloads.FullBlackscholesElements, 32)
		}
		b.ReportMetric(r.Seconds(), "modeled-s")
	})
}

func benchActivation(b *testing.B, name string,
	run func(int, []float32, workloads.Kit) (workloads.Result, error)) {
	acts := workloads.GenActivations(benchDPUs*11789, 2)
	kits := []workloads.Kit{
		workloads.PolyActivationKit(),
		workloads.MLUTIKit(10),
		workloads.LLUTIKit(12),
	}
	for _, kit := range kits {
		b.Run(kit.Name, func(b *testing.B) {
			var r workloads.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = run(benchDPUs, acts, kit)
				if err != nil {
					b.Fatal(err)
				}
			}
			full := workloads.ProjectFull(r, workloads.FullActivationElements)
			b.ReportMetric(full.Seconds(), "modeled-s")
			b.ReportMetric(full.Errors.RMSE, "rmse")
		})
	}
	_ = name
}

func BenchmarkFig9Sigmoid(b *testing.B) {
	benchActivation(b, "sigmoid", workloads.SigmoidPIM)
}

func BenchmarkFig9Softmax(b *testing.B) {
	benchActivation(b, "softmax", workloads.SoftmaxPIM)
}

// --- Serving engine: cache-warm EvaluateBatch vs. the cold one-shot
// path. The cold path rebuilds tables (generation + transfer) for
// every batch the way a fresh core.Build/Lib would; the warm engine
// pays setup once and afterwards only the pipelined
// transfer/compute/drain costs. The modeled-s metrics make the gap
// host-independent: warm modeled-s must come out well below cold. ---

func BenchmarkEngineWarmVsCold(b *testing.B) {
	const n = 2048
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = -6 + 12*float32(i)/float32(n)
	}
	spec := Config{Method: LLUT, Interpolated: true, SizeLog2: 12}

	b.Run("cold-one-shot", func(b *testing.B) {
		var modeled float64
		out := make([]float32, n)
		for i := 0; i < b.N; i++ {
			lib, err := New(spec, Sigmoid) // rebuilds + retransfers tables
			if err != nil {
				b.Fatal(err)
			}
			lib.EvalSlice(Sigmoid, xs, out)
			modeled = lib.SetupSeconds() +
				float64(lib.Cycles())/pimsim.DefaultClockHz
		}
		b.ReportMetric(modeled, "modeled-s")
	})

	b.Run("engine-warm", func(b *testing.B) {
		// One shard so the single warm-up request makes every later
		// request a guaranteed cache hit (residency is per shard).
		eng, err := NewEngine(EngineConfig{DPUs: 4, Shards: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		if _, _, err := eng.EvaluateBatch(Sigmoid, spec, xs); err != nil {
			b.Fatal(err) // warm the table cache
		}
		var modeled float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st, err := eng.EvaluateBatch(Sigmoid, spec, xs)
			if err != nil {
				b.Fatal(err)
			}
			if st.SetupSeconds != 0 || !st.CacheHit {
				b.Fatalf("warm request rebuilt tables: %+v", st)
			}
			modeled = st.ModeledSeconds()
		}
		b.ReportMetric(modeled, "modeled-s")
	})
}

// --- Fused batch fast path vs. the per-element reference interpreter.
// Both engines model identical cycles (enforced by the differential
// tests); the benchmark measures host-side throughput of the compute
// pipeline. elems/s is the headline metric; run with -benchmem to see
// the steady-state allocation profile. ---

func BenchmarkEngineThroughput(b *testing.B) {
	const n = 1 << 16
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = -6 + 12*float32(i)/float32(n)
	}
	spec := Config{Method: LLUT, Interpolated: true, SizeLog2: 12}

	run := func(b *testing.B, cfg EngineConfig) {
		eng, err := NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		if _, _, err := eng.EvaluateBatch(Sigmoid, spec, xs); err != nil {
			b.Fatal(err) // warm the table cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.EvaluateBatch(Sigmoid, spec, xs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
	}

	b.Run("fast", func(b *testing.B) {
		run(b, EngineConfig{DPUs: 4, Shards: 1, MaxBatch: n})
	})
	b.Run("reference", func(b *testing.B) {
		run(b, EngineConfig{DPUs: 4, Shards: 1, MaxBatch: n, Reference: true})
	})
}

// --- §4.2.4: per-function microbenchmarks through the public API ---

func BenchmarkPublicAPI(b *testing.B) {
	cfg := Config{Method: LLUT, Interpolated: true, SizeLog2: 12, Placement: InMRAM}
	lib, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	calls := []struct {
		name string
		f    func(float32) float32
		x    float32
	}{
		{"sinf", lib.Sinf, 1.1},
		{"tanf", lib.Tanf, 1.1},
		{"tanhf", lib.Tanhf, 1.1},
		{"expf", lib.Expf, 1.1},
		{"logf", lib.Logf, 42},
		{"sqrtf", lib.Sqrtf, 42},
		{"geluf", lib.Geluf, 1.1},
	}
	for _, c := range calls {
		b.Run(c.name, func(b *testing.B) {
			lib.ResetCycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.f(c.x)
			}
			b.ReportMetric(float64(lib.Cycles())/float64(b.N), "pim-cycles/op")
		})
	}
}
