package transpimlib

import (
	"errors"
	"math"
	"testing"
)

// TestClusterPublicAPI drives the public Cluster through its paces:
// N=1 pass-through bit-identity with a bare Engine, tenant quotas with
// ErrOverloaded, and a per-replica fault plan exercising failover
// without incorrect results.
func TestClusterPublicAPI(t *testing.T) {
	spec := Config{Method: LLUT, Interpolated: true, SizeLog2: 12}
	xs := make([]float32, 300)
	for i := range xs {
		xs[i] = -6 + 12*float32(i)/float32(len(xs)-1)
	}

	t.Run("single-replica passthrough", func(t *testing.T) {
		eng, err := NewEngine(EngineConfig{DPUs: 4, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		cl, err := NewCluster(ClusterConfig{Engine: EngineConfig{DPUs: 4, Shards: 1}})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if cl.Replicas() != 1 {
			t.Fatalf("default replica count = %d, want 1", cl.Replicas())
		}
		want, st1, err := eng.EvaluateBatch(Sigmoid, spec, xs)
		if err != nil {
			t.Fatal(err)
		}
		got, st2, err := cl.EvaluateBatch(Sigmoid, spec, xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("elem %d: engine %x cluster %x", i,
					math.Float32bits(want[i]), math.Float32bits(got[i]))
			}
		}
		if st1.KernelCycles != st2.KernelCycles {
			t.Fatalf("kernel cycles diverge: %d vs %d", st1.KernelCycles, st2.KernelCycles)
		}
	})

	t.Run("quota shed", func(t *testing.T) {
		cl, err := NewCluster(ClusterConfig{
			Replicas: 2,
			Engine:   EngineConfig{DPUs: 2, Shards: 1},
			Quotas:   map[string]TenantQuota{"metered": {Rate: 1, Burst: float64(len(xs))}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if _, _, err := cl.EvaluateBatchAs("metered", Sigmoid, spec, xs); err != nil {
			t.Fatalf("first request within burst: %v", err)
		}
		_, _, err = cl.EvaluateBatchAs("metered", Sigmoid, spec, xs)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("got %v, want ErrOverloaded", err)
		}
		if st := cl.Stats(); st.ShedQuota != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})

	t.Run("replica fault plan", func(t *testing.T) {
		cl, err := NewCluster(ClusterConfig{
			Replicas:      3,
			Engine:        EngineConfig{DPUs: 2, Shards: 1},
			ReplicaFaults: map[int]string{1: "seed=7,dpufail=1"},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ref, err := NewEngine(EngineConfig{DPUs: 2, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		want, _, err := ref.EvaluateBatch(Exp, spec, xs)
		if err != nil {
			t.Fatal(err)
		}
		for _, tenant := range []string{"a", "b", "c", "d", "e", "f"} {
			got, _, err := cl.EvaluateBatchAs(tenant, Exp, spec, xs)
			if err != nil {
				t.Fatalf("tenant %s: %v", tenant, err)
			}
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("tenant %s elem %d: %x vs %x", tenant, i,
						math.Float32bits(want[i]), math.Float32bits(got[i]))
				}
			}
		}
		if len(cl.Health()) != 3 {
			t.Fatalf("health rows: %d", len(cl.Health()))
		}
	})

	t.Run("bad fault plan", func(t *testing.T) {
		_, err := NewCluster(ClusterConfig{
			Replicas:      2,
			ReplicaFaults: map[int]string{0: "nonsense=plan"},
		})
		if err == nil {
			t.Fatal("bad per-replica fault plan accepted")
		}
	})
}
